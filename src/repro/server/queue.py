"""The async job queue behind ``POST /v1/optimize``.

A submission becomes a :class:`Job` — id, tenant, request, fully
resolved limits, and a status that walks ``queued → running →
done | failed``.  Jobs wait in a bounded FIFO; ``queue_workers``
consumer threads pull them and execute through the **shared**
:class:`~repro.api.session.Session`, which means every job sees the
same two-tier result cache (repeat requests across tenants are cache
hits, observable in ``CacheStats``) and, when the session's warm
persistent pool is running, saturates in an already-forked worker
process instead of re-forking per request.

The queue is also where the serve layer's observability comes
together per request: each job carries the request's ``trace_id``;
execution emits structured events (``job.started``, ``pool.restarted``,
``cache.evicted``, and the terminal ``request.completed``), observes
per-tenant latency histograms (queue-wait / run / end-to-end),
completes the job's flight-recorder entry, and — when a ``trace_dir``
is configured — merges the daemon-side queue-wait/run spans with the
engine and fork-pool worker spans the session accumulated into one
Chrome trace per request (``<trace_dir>/<trace_id>.trace.json``).

Job ids are unguessable capability tokens (``secrets.token_hex``):
whoever holds the id may poll it.  Completed jobs are retained for
polling up to ``retain_jobs``; beyond that the oldest finished jobs
are dropped (a poll for a dropped id is a 404, documented in
``docs/SERVER.md``).
"""

from __future__ import annotations

import queue as _queue
import secrets
import threading
import time
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional

from ..api.limits import Limits
from ..api.session import Session
from ..api.types import OptimizationReport, OptimizationRequest
from ..obs.events import NULL_EVENTS, EventLog, FlightRecorder
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import CAT_SERVER, Tracer

__all__ = ["Job", "JobQueue", "QueueFull",
           "QUEUED", "RUNNING", "DONE", "FAILED"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueFull(Exception):
    """The pending-job queue is at ``max_queue`` capacity."""


@dataclass
class Job:
    """One optimization request's lifecycle inside the daemon."""

    id: str
    tenant: str
    request: OptimizationRequest
    limits: Limits
    status: str = QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    report: Optional[OptimizationReport] = None
    error: Optional[str] = None
    #: The HTTP request's correlation id (also stamped on every span
    #: and event this job produces); empty for direct queue callers.
    trace_id: str = ""
    #: ``perf_counter`` at submission — queue-wait and end-to-end
    #: latency are measured on the monotonic clock, not wall time.
    created_pc: float = field(default_factory=perf_counter)
    #: This request's flight-recorder entry, completed at job end.
    record: Optional[Dict[str, Any]] = None

    def to_dict(self, *, include_report: bool = True) -> dict:
        """The wire form served by ``GET /v1/jobs/<id>``."""
        data: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "kernel": self.request.display_name,
            "target": self.request.target,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.trace_id:
            data["trace_id"] = self.trace_id
        if self.error is not None:
            data["error"] = self.error
        if include_report and self.report is not None:
            data["report"] = self.report.to_dict()
        return data


class JobQueue:
    """Bounded FIFO + worker threads over one shared session."""

    def __init__(
        self,
        session: Session,
        *,
        workers: int = 2,
        pool_workers: int = 0,
        max_queue: int = 64,
        retain_jobs: int = 1024,
        metrics: MetricsRegistry = NULL_METRICS,
        events: EventLog = NULL_EVENTS,
        recorder: Optional[FlightRecorder] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.session = session
        self.workers = max(1, workers)
        self.pool_workers = max(0, pool_workers)
        self.retain_jobs = max(1, retain_jobs)
        self.metrics = metrics
        self.events = events
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.trace_dir = str(trace_dir) if trace_dir else None
        self._pending: "_queue.Queue[Optional[str]]" = _queue.Queue(
            maxsize=max_queue
        )
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for retention
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running = False
        # Did the warm pool ever come up?  Distinguishes the lazy
        # re-warm after a broken pool (a pool.restarted event) from the
        # initial warm-up in start().
        self._pool_ever_warm = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        if self.pool_workers > 0:
            # Warm the persistent fork pool up front: the first request
            # should not pay the pool construction either.
            self.session.start_pool(self.pool_workers)
            if self.session.pool_warm:
                self._pool_ever_warm = True
                self.events.emit("pool.warm", workers=self.pool_workers)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        if not self._running:
            return
        self._running = False
        for _ in self._threads:
            try:
                self._pending.put_nowait(None)  # wake + exit sentinel
            except _queue.Full:
                pass
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.session.close_pool()

    # -- submission / lookup --------------------------------------------
    def submit(self, tenant: str, request: OptimizationRequest,
               limits: Limits, *, trace_id: str = "",
               record: Optional[Dict[str, Any]] = None) -> Job:
        """Enqueue one admitted request; raises :class:`QueueFull`."""
        job = Job(
            id=secrets.token_hex(8),
            tenant=tenant,
            request=request,
            limits=limits,
            trace_id=trace_id,
            record=record,
        )
        if record is not None:
            self.recorder.update(record, job=job.id)
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._prune_locked()
        try:
            self._pending.put_nowait(job.id)
        except _queue.Full:
            with self._lock:
                self._jobs.pop(job.id, None)
                try:
                    self._order.remove(job.id)
                except ValueError:
                    pass
            raise QueueFull(
                f"job queue is full ({self._pending.maxsize} pending)"
            ) from None
        self.metrics.inc("server", "jobs_submitted_total",
                         help="jobs accepted into the queue",
                         tenant=tenant)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._order
                    if job_id in self._jobs]
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        return jobs

    def active_count(self, tenant: str) -> int:
        """Queued-or-running jobs for one tenant (the concurrency gate)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values()
                if job.tenant == tenant and job.status in (QUEUED, RUNNING)
            )

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    def depth(self) -> int:
        return self._pending.qsize()

    def _prune_locked(self) -> None:
        """Drop the oldest *finished* jobs beyond the retention cap."""
        excess = len(self._jobs) - self.retain_jobs
        if excess <= 0:
            return
        kept: List[str] = []
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if excess > 0 and job.status in (DONE, FAILED):
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    # -- execution ------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:  # shutdown sentinel
                return
            job = self.get(job_id)
            if job is None:
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        job.status = RUNNING
        job.started = time.time()
        started_pc = perf_counter()
        if self.pool_workers > 0:
            # Lazily re-warm after a broken pool was discarded
            # mid-batch; a no-op while the pool is healthy.
            was_warm = self.session.pool_warm
            self.session.start_pool(self.pool_workers)
            if self.session.pool_warm and not was_warm:
                if self._pool_ever_warm:
                    self.events.emit("pool.restarted",
                                     trace_id=job.trace_id or None,
                                     workers=self.pool_workers)
                    self.metrics.inc("server", "pool_restarts_total",
                                     help="warm fork pools rebuilt after "
                                          "a broken pool was discarded")
                self._pool_ever_warm = True
        self.events.emit("job.started", job=job.id, tenant=job.tenant,
                         trace_id=job.trace_id or None,
                         kernel=job.request.display_name,
                         target=job.request.target)
        request = job.request
        trace_path: Optional[str] = None
        if self.trace_dir and job.trace_id:
            # Per-request merged Chrome trace.  The trace knob is
            # volatile (excluded from cache keys and fingerprints), so
            # setting it server-side preserves the byte-identity
            # contract with one-shot runs.
            trace_path = str(
                Path(self.trace_dir) / f"{job.trace_id}.trace.json"
            )
            request = dc_replace(request, trace=trace_path)
        if job.trace_id and request.trace_id != job.trace_id:
            request = dc_replace(request, trace_id=job.trace_id)
        evictions_before = self.session.cache.stats.evictions
        try:
            reports = self.session.optimize_many(
                [request], parallel=self.pool_workers > 0
            )
            report = reports[0]
            job.report = report
            if report.ok:
                job.status = DONE
            else:
                job.status = FAILED
                job.error = report.error
        except Exception as exc:  # the daemon must survive any job
            job.status = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        job.finished = time.time()
        finished_pc = perf_counter()
        queue_wait = max(0.0, started_pc - job.created_pc)
        run_seconds = max(0.0, finished_pc - started_pc)
        total_seconds = max(0.0, finished_pc - job.created_pc)
        evicted = self.session.cache.stats.evictions - evictions_before
        if evicted > 0:
            self.events.emit("cache.evicted", count=evicted,
                             trace_id=job.trace_id or None)
        self._finish_observation(
            job, queue_wait, run_seconds, total_seconds, trace_path,
        )

    def _finish_observation(self, job: Job, queue_wait: float,
                            run_seconds: float, total_seconds: float,
                            trace_path: Optional[str]) -> None:
        """Metrics, events, flight record, and the merged trace for one
        finished job."""
        report = job.report
        stop_reason = report.stop_reason if report is not None else None
        cache_hit = report.cache_hit if report is not None else None
        self.metrics.inc("server", "jobs_completed_total",
                         help="jobs that reached a terminal status",
                         tenant=job.tenant, status=job.status)
        self.metrics.observe(
            "server", "queue_wait_seconds", queue_wait,
            help="submission-to-start latency", tenant=job.tenant,
        )
        self.metrics.observe(
            "server", "job_seconds", run_seconds,
            help="job execution wall time", tenant=job.tenant,
        )
        self.metrics.observe(
            "server", "e2e_seconds", total_seconds,
            help="submission-to-completion latency", tenant=job.tenant,
        )
        # Exactly one request.completed per accepted request — the
        # rejected path emits its own (with the 4xx code) in app.py.
        self.events.emit(
            "request.completed", trace_id=job.trace_id or None,
            tenant=job.tenant, job=job.id,
            kernel=job.request.display_name, target=job.request.target,
            status=job.status, stop_reason=stop_reason or None,
            cache_hit=cache_hit, error=job.error,
            queue_wait_seconds=round(queue_wait, 6),
            run_seconds=round(run_seconds, 6),
            total_seconds=round(total_seconds, 6),
        )
        if job.record is not None:
            self.recorder.update(
                job.record, outcome=job.status,
                stop_reason=stop_reason or None, cache_hit=cache_hit,
                error=job.error,
                queue_wait_seconds=round(queue_wait, 6),
                run_seconds=round(run_seconds, 6),
                total_seconds=round(total_seconds, 6),
                trace_path=trace_path, finished=job.finished,
            )
        if trace_path is not None:
            self._write_request_trace(
                job, queue_wait, run_seconds, trace_path,
            )

    def _write_request_trace(self, job: Job, queue_wait: float,
                             run_seconds: float, trace_path: str) -> None:
        """Merge the daemon-side spans with whatever the session
        accumulated for this request's trace path and write the file.

        The daemon lane gets the full request span plus queue-wait and
        run sub-spans; the session contributes the engine spans (and,
        under the fork pool, each worker pid's lane) it harvested from
        ``optimize_many`` — one file tells the whole story of one
        request, across processes.
        """
        tracer = Tracer()
        started_pc = job.created_pc + queue_wait
        tracer.add_complete(
            f"request:{job.request.display_name}/{job.request.target}",
            CAT_SERVER, job.created_pc, queue_wait + run_seconds,
            trace_id=job.trace_id, tenant=job.tenant, job=job.id,
            status=job.status,
        )
        tracer.add_complete("queue_wait", CAT_SERVER, job.created_pc,
                            queue_wait, trace_id=job.trace_id)
        tracer.add_complete("run", CAT_SERVER, started_pc, run_seconds,
                            trace_id=job.trace_id)
        try:
            self.session.finish_trace(
                trace_path, tracer.export_events(),
                session_name=f"request:{job.trace_id}",
                metadata={"trace_id": job.trace_id, "tenant": job.tenant},
            )
        except OSError:
            # Trace capture must never take a request down with it.
            pass
