"""Structured span tracing for the whole engine stack.

A :class:`Tracer` records nested, timed spans — session → request →
saturation step → phase → per-rule search → extraction — and exports
them in the Chrome trace-event JSON format, so any recorded run opens
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Design constraints, in order:

* **Near-zero overhead when disabled.**  The engine is instrumented
  unconditionally, so the disabled path must cost nothing measurable:
  a disabled tracer's :meth:`Tracer.span` returns a measuring-but-
  discarded span (two ``perf_counter`` calls — exactly what the manual
  phase bookkeeping it replaced already paid), and the fine-grained
  call sites (per-rule searches, per-chunk worker work) are guarded by
  ``tracer.enabled`` so they allocate nothing at all.  The guard is
  enforced by ``benchmarks/test_obs_overhead.py`` next to the perf
  gate.
* **One clock discipline.**  Every span start/duration comes from
  ``time.perf_counter()``, which on Linux is ``CLOCK_MONOTONIC`` —
  system-wide, so timestamps recorded in forked worker processes are
  directly comparable to the parent's.  ``PhaseTimings`` is now a
  consumer of the runner's phase spans rather than a parallel set of
  stopwatches.
* **Cross-process merging.**  Workers (both the per-step search/apply
  workers in :mod:`repro.saturation.parallel` and the per-run
  ``optimize_many`` pool workers) record events locally, tagged with
  their pid, and ship them back with their results;
  :meth:`Tracer.add_remote` folds them into the parent trace, and the
  export lays each pid out on its own lane.  This is what makes the
  difference between real parallelism and time-slicing *visible*: on a
  multicore box the worker lanes overlap, on a single CPU they
  interleave.

Events are stored with **absolute** ``perf_counter`` timestamps and
only made relative to the tracer's epoch at export time, which is what
lets events recorded by a different process (with its own tracer and
epoch) merge without translation.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "resolve_tracer",
    "TraceError",
]

#: Event categories used across the engine; purely informational (they
#: become the Chrome ``cat`` field, filterable in Perfetto).
CAT_SESSION = "session"
CAT_REQUEST = "request"
CAT_STEP = "step"
CAT_PHASE = "phase"
CAT_RULE = "rule"
CAT_EXTRACT = "extract"
CAT_POOL = "pool"
CAT_SERVER = "server"


class TraceError(RuntimeError):
    """A span protocol violation (exited out of order, or never
    entered)."""


class Span:
    """One timed region.  Use as a context manager, or call
    :meth:`done` explicitly when the region does not nest lexically.

    A span always measures (``duration`` is valid after exit) even when
    its tracer is disabled — the runner's phase timings consume the
    durations either way; the tracer merely decides whether the event
    is retained for export.
    """

    __slots__ = ("tracer", "name", "cat", "args", "start", "duration")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = -1.0
        self.duration = -1.0

    def __enter__(self) -> "Span":
        if self.tracer.enabled:
            self.tracer._stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.done()

    def done(self) -> None:
        """Close the span (idempotent); records the event when the
        tracer is enabled."""
        if self.duration >= 0.0:
            return  # already closed
        if self.start < 0.0:
            raise TraceError(f"span {self.name!r} closed before it was entered")
        self.duration = time.perf_counter() - self.start
        self.tracer._finish(self)

    def set(self, **args: Any) -> "Span":
        """Attach (or update) event args, e.g. ``span.set(cache_hit=True)``."""
        if self.args is None:
            self.args = {}
        self.args.update(args)
        return self


class Tracer:
    """Collects span events; exports Chrome trace-event JSON.

    ``enabled=False`` builds the no-op variant: spans still measure but
    nothing is retained (see :data:`NULL_TRACER`).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: This process's pid — the tracer's own lane.
        self.pid = os.getpid()
        #: ``perf_counter`` at creation; export timestamps are relative
        #: to this.
        self.epoch = time.perf_counter()
        #: Finished events: name/cat/ts/dur (perf_counter secs)/pid/args.
        self.events: List[Dict[str, Any]] = []
        #: Currently-open spans (this process only), innermost last.
        self._stack: List[Span] = []

    # -- recording ------------------------------------------------------

    def span(self, name: str, cat: str = CAT_PHASE,
             **args: Any) -> Span:
        """A new span; enter it (``with``) or call ``done()`` on it."""
        return Span(self, name, cat, args or None)

    def add_complete(self, name: str, cat: str, start: float,
                     duration: float, **args: Any) -> None:
        """Record an already-measured region (the serial per-rule
        search path, which times rules anyway for telemetry)."""
        if not self.enabled:
            return
        self.events.append({
            "name": name, "cat": cat, "ts": start, "dur": duration,
            "pid": self.pid, "args": args or None,
        })

    def _finish(self, span: Span) -> None:
        if not self.enabled:
            return
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            raise TraceError(
                f"span {span.name!r} closed while inner spans are open: "
                f"{[s.name for s in self._stack[self._stack.index(span) + 1:]]}"
            )
        self.events.append({
            "name": span.name, "cat": span.cat, "ts": span.start,
            "dur": span.duration, "pid": self.pid, "args": span.args,
        })

    @property
    def open_depth(self) -> int:
        """How many spans are currently open in this process."""
        return len(self._stack)

    # -- cross-process merging ------------------------------------------

    def export_events(self) -> List[Dict[str, Any]]:
        """The finished events, absolute-timestamped, for shipping to a
        parent process (pids travel with each event)."""
        return list(self.events)

    def add_remote(self, events: List[Dict[str, Any]]) -> None:
        """Merge events recorded by another process's tracer.

        Each event keeps the pid of the process that recorded it; the
        export lays every pid out on its own lane.  Timestamps are
        absolute ``perf_counter`` values, comparable across fork
        (``CLOCK_MONOTONIC`` is system-wide), so no translation
        happens here.
        """
        if not self.enabled or not events:
            return
        for event in events:
            if "ts" not in event or "dur" not in event:
                continue  # malformed: drop rather than poison the trace
            self.events.append(event)

    # -- export ---------------------------------------------------------

    def _lane_name(self, pid: int) -> str:
        return "engine" if pid == self.pid else f"worker-{pid}"

    def chrome_trace(self, session_name: str = "session",
                     metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Lanes (Chrome ``tid``) are pids; events within a lane are
        sorted by timestamp, so per-lane timestamps are monotonic.  A
        synthetic top-level ``session`` span covers the whole recorded
        timeline, and metadata events name the process and each lane.
        """
        finished = sorted(self.events, key=lambda e: (e["pid"], e["ts"]))
        lanes = sorted({event["pid"] for event in finished} | {self.pid})
        trace_events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": "repro engine"},
        }]
        for pid in lanes:
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": pid,
                "args": {"name": self._lane_name(pid)},
            })
        end = self.epoch
        entries: List[Dict[str, Any]] = []
        for event in finished:
            ts = max(0.0, event["ts"] - self.epoch)
            end = max(end, event["ts"] + event["dur"])
            entry: Dict[str, Any] = {
                "name": event["name"], "cat": event["cat"], "ph": "X",
                "ts": round(ts * 1e6, 3),
                "dur": round(event["dur"] * 1e6, 3),
                "pid": 1, "tid": event["pid"],
            }
            if event.get("args"):
                entry["args"] = event["args"]
            entries.append(entry)
        # The synthetic session span: one top-level bar spanning the
        # whole timeline on the engine lane, so the trace always has a
        # root even though the session itself never "closes".  It goes
        # *before* the sorted events: its ts (0) precedes everything on
        # its lane, keeping every lane's file order monotonic.
        trace_events.append({
            "name": session_name, "cat": CAT_SESSION, "ph": "X",
            "ts": 0.0, "dur": round(max(0.0, end - self.epoch) * 1e6, 3),
            "pid": 1, "tid": self.pid,
        })
        trace_events.extend(entries)
        trace: Dict[str, Any] = {
            "traceEvents": trace_events, "displayTimeUnit": "ms",
        }
        if metadata:
            # Chrome's free-form top-level metadata slot: the serve
            # layer stamps the request's trace_id here so a saved
            # trace file is self-identifying.
            trace["otherData"] = dict(metadata)
        return trace

    def write(self, path: str, session_name: str = "session",
              metadata: Optional[Dict[str, Any]] = None) -> None:
        """Write the Chrome trace JSON to ``path`` (parents created)."""
        from pathlib import Path

        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.chrome_trace(session_name, metadata)))


#: The shared disabled tracer: spans measure, nothing is retained.
NULL_TRACER = Tracer(enabled=False)


def resolve_tracer(trace: "None | str | Tracer") -> Tracer:
    """The tracer for a run: an explicit :class:`Tracer` is used as-is,
    a path (or any truthy value) builds a fresh enabled tracer, and
    ``None`` resolves to the shared no-op."""
    if isinstance(trace, Tracer):
        return trace
    if trace:
        return Tracer()
    return NULL_TRACER
