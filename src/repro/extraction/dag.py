"""DAG-aware extraction: price shared subterms once.

The greedy (tree-cost) extractor charges a class every time a chosen
parent references it, so a subexpression shared by two parents — the
overlapping windows of the ``jacobi1d``/``blur1d`` stencils, the
``A·B`` factor reused inside ``2mm`` — is paid for twice even though a
real backend computes it once.  This extractor evaluates solutions as
DAGs instead:

* every class in the solution closure contributes its **local cost**
  exactly once, where ``local = enode_cost(child DAG costs) − Σ child
  DAG costs`` (the node's marginal cost given its children are already
  available).  Multiplicative models keep their semantics: a
  ``build N f`` still charges ``(N−1)·cost(f)`` locally because the
  loop body *executes* N times regardless of sharing;
* the cost of a candidate e-node is its local cost plus the cost of
  the **union** of its children's reachable-class sets — a class two
  children share is counted once.

Optimal DAG extraction is NP-hard (it is weighted-set-cover shaped);
this implementation is the standard greedy fixpoint over reach sets
(extraction-gym's ``greedy-dag``), seeded from the greedy extractor's
choices so it can only improve on the tree solution — which is what
makes the CI assertion "DAG best cost ≤ greedy best cost" hold by
construction.  Cyclic candidates (an e-node whose children reach back
to its own class) are rejected, so the chosen graph is always acyclic
and term building terminates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple as TupleT

from ..egraph.enode import ENode, enode_to_term_shallow
from ..ir.terms import Term
from .base import (
    INFINITY,
    CostModel,
    ExtractionError,
    ExtractionResult,
    Extractor,
    FixpointDivergence,
    checked_enode_cost,
)
from .greedy import GreedyExtractor

__all__ = ["DagExtractor"]

#: Minimum improvement for a choice update; guarantees the relaxation
#: terminates (costs are bounded below by zero and strictly decrease).
_EPS = 1e-9

#: DAG refinement converges in a handful of passes from the greedy
#: seed; the cap only exists to turn a pathological cost model into a
#: diagnostic instead of a hang.
_MAX_PASSES = 1_000


class DagExtractor(Extractor):
    """Extracts minimum-DAG-cost terms from an e-graph."""

    name = "dag"

    def __init__(self, egraph, cost_model: CostModel) -> None:
        super().__init__(egraph, cost_model)
        #: Greedy (tree) table: used to seed choices and to skip
        #: e-nodes that have no finite derivation at all.
        self.tree = GreedyExtractor(egraph, cost_model)
        #: class id → (dag cost, chosen e-node, reach map).  The reach
        #: map assigns each class in the solution closure its local
        #: cost; the dag cost is the sum of the reach map's values.
        self._choices: Dict[int, TupleT[float, ENode, Dict[int, float]]] = {}
        self._seed()
        self._refine()

    # ------------------------------------------------------------------
    # seeding: the greedy solution, re-priced as a DAG
    # ------------------------------------------------------------------

    def _seed(self) -> None:
        egraph = self.egraph
        for class_id in egraph.class_ids():
            self._seed_class(egraph.find(class_id))

    def _seed_class(self, class_id: int) -> Optional[TupleT[float, ENode, Dict[int, float]]]:
        existing = self._choices.get(class_id)
        if existing is not None:
            return existing
        node = self.tree.best_node(class_id)
        if node is None:
            return None
        # The greedy choice graph is acyclic (strict cost monotonicity),
        # so a post-order walk over argmin nodes terminates.
        reach: Dict[int, float] = {}
        child_costs = []
        for child in node.children:
            entry = self._seed_class(self.egraph.find(child))
            assert entry is not None  # finite parent ⇒ finite children
            reach.update(entry[2])
            child_costs.append(entry[0])
        local = self._local_cost(class_id, node, child_costs)
        reach[class_id] = local
        choice = (sum(reach.values()), node, reach)
        self._choices[class_id] = choice
        return choice

    def _local_cost(self, class_id: int, node: ENode, child_costs) -> float:
        total = checked_enode_cost(
            self.cost_model, self.egraph, class_id, node, list(child_costs)
        )
        # The same strict-monotonicity floor the greedy extractor
        # applies, expressed on the local share.
        return max(total - sum(child_costs), 1e-6)

    # ------------------------------------------------------------------
    # refinement: relax choices until no class improves
    # ------------------------------------------------------------------

    def _refine(self) -> None:
        egraph = self.egraph
        for passes in range(_MAX_PASSES):
            changed_classes = []
            for eclass in list(egraph.classes()):
                class_id = eclass.class_id
                current = self._choices.get(class_id)
                best_cost = current[0] if current is not None else INFINITY
                best: Optional[TupleT[float, ENode, Dict[int, float]]] = None
                for node in eclass.nodes:
                    candidate = self._evaluate(class_id, node)
                    if candidate is not None and candidate[0] < best_cost - _EPS:
                        best_cost, best = candidate[0], candidate
                if best is not None:
                    self._choices[class_id] = best
                    changed_classes.append(class_id)
            if not changed_classes:
                return
        raise FixpointDivergence(self.name, _MAX_PASSES, changed_classes)

    def _evaluate(
        self, class_id: int, node: ENode
    ) -> Optional[TupleT[float, ENode, Dict[int, float]]]:
        find = self.egraph.find
        reach: Dict[int, float] = {}
        child_costs = []
        for child in node.children:
            entry = self._choices.get(find(child))
            if entry is None:
                return None
            if class_id in entry[2]:
                return None  # cycle: the child's solution needs us
            reach.update(entry[2])
            child_costs.append(entry[0])
        reach[class_id] = self._local_cost(class_id, node, child_costs)
        return (sum(reach.values()), node, reach)

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------

    def cost_of(self, class_id: int) -> float:
        """Minimum DAG cost of any term represented by the class."""
        entry = self._choices.get(self.egraph.find(class_id))
        return entry[0] if entry is not None else INFINITY

    def tree_cost_of(self, class_id: int) -> float:
        """The greedy (tree) cost, for tree-vs-DAG comparisons."""
        return self.tree.cost_of(class_id)

    def extract(self, class_id: int) -> ExtractionResult:
        class_id = self.egraph.find(class_id)
        entry = self._choices.get(class_id)
        if entry is None:
            return ExtractionResult(None, INFINITY)
        memo: Dict[int, Term] = {}
        chosen: Dict[int, ENode] = {}
        term = self._build(class_id, memo, chosen, set())
        return ExtractionResult(term, entry[0], chosen)

    def _build(
        self,
        class_id: int,
        memo: Dict[int, Term],
        chosen: Dict[int, ENode],
        on_path: set,
    ) -> Term:
        class_id = self.egraph.find(class_id)
        cached = memo.get(class_id)
        if cached is not None:
            return cached
        if class_id in on_path:
            # Reach maps are transitive, so cycles can only arise from
            # a stale map captured before a descendant's choice moved;
            # fail loudly rather than recursing forever.
            raise ExtractionError(
                f"dag extraction chose a cyclic derivation through class "
                f"{class_id}; this indicates stale reach bookkeeping"
            )
        on_path.add(class_id)
        _, node, _ = self._choices[class_id]
        chosen[class_id] = node
        children = tuple(
            self._build(child, memo, chosen, on_path) for child in node.children
        )
        on_path.discard(class_id)
        term = enode_to_term_shallow(node.op, node.payload, children)
        memo[class_id] = term
        return term
