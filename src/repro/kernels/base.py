"""Kernel descriptors: IR term + input generation + reference outputs.

A :class:`Kernel` bundles everything an experiment needs:

* ``term`` — the kernel expressed in the minimalist IR (built from the
  combinators of :mod:`repro.kernels.combinators`, per §VI);
* ``symbol_shapes`` — shapes of the free input symbols, feeding the
  e-graph's shape analysis and hence the cost models;
* ``make_inputs`` — deterministic random inputs;
* ``reference`` — the golden result, computed with vectorized numpy
  (used for correctness checks);
* ``reference_loops`` — a straight-line Python-loop transliteration of
  the PolyBench-style C reference (the timing baseline that stands in
  for the paper's "reference C implementations", DESIGN.md §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from ..ir.shapes import Shape
from ..ir.terms import Term

__all__ = ["Kernel", "KernelRegistry"]

InputMaker = Callable[[np.random.Generator], Dict[str, Any]]
Reference = Callable[[Mapping[str, Any]], Any]


@dataclass
class Kernel:
    """One benchmark kernel (table I)."""

    name: str
    suite: str  # "polybench" or "custom"
    description: str
    term: Term
    symbol_shapes: Dict[str, Shape]
    make_inputs: InputMaker
    reference: Reference
    reference_loops: Reference
    params: Dict[str, int] = field(default_factory=dict)

    def inputs(self, seed: int = 0) -> Dict[str, Any]:
        """Deterministic inputs for this kernel."""
        return self.make_inputs(np.random.default_rng(seed))

    def golden(self, inputs: Optional[Mapping[str, Any]] = None, seed: int = 0) -> Any:
        """Reference (numpy) output for the given or default inputs."""
        if inputs is None:
            inputs = self.inputs(seed)
        return self.reference(inputs)


class KernelRegistry:
    """Name → kernel lookup over the full suite."""

    def __init__(self) -> None:
        self._kernels: Dict[str, Kernel] = {}

    def register(self, kernel: Kernel) -> Kernel:
        if kernel.name in self._kernels:
            raise ValueError(f"duplicate kernel {kernel.name!r}")
        self._kernels[kernel.name] = kernel
        return kernel

    def get(self, name: str) -> Kernel:
        if name not in self._kernels:
            raise KeyError(
                f"unknown kernel {name!r}; available: {sorted(self._kernels)}"
            )
        return self._kernels[name]

    def names(self) -> list:
        return sorted(self._kernels)

    def by_suite(self, suite: str) -> list:
        return [k for k in self._kernels.values() if k.suite == suite]

    def all(self) -> list:
        return [self._kernels[name] for name in self.names()]
