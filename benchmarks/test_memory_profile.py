"""Memory profile artifact: peak RSS and snapshot sizes per pinned run.

The flat-store worker protocol promises that per-step snapshot cost is
one columnar memcpy in the parent and an O(1) attach in workers —
nothing that scales with the number of live Python objects.  This
module measures the observable side of that promise and writes it to
``REPRO_MEM_REPORT`` (default ``mem_profile.json``, git-ignored; CI
uploads it as an artifact so memory trends stay inspectable across
commits without gating merges):

* ``peak_rss_kb`` — the process high-water mark after the pinned
  tier-1 runs (``ru_maxrss``);
* per run: e-node / e-class counts and the byte size of the final
  e-graph's frozen :class:`~repro.egraph.store.FlatStore` arrays —
  what one published shared-memory segment costs at that graph size.

The only hard assertions are sanity bounds: snapshots must be
columnar-sized (tens of bytes per e-node, not the KBs per node that
pickled object graphs cost), which would catch an accidental return to
object serialization.
"""

import json
import os
import sys
from pathlib import Path

import pytest

from repro.experiments import optimize_pair, selected_kernels

#: (kernel, target) pairs profiled; the tier-1 marquee set.
PAIRS = (
    ("gemv", "blas"),
    ("vsum", "blas"),
    ("axpy", "blas"),
)

REPORT_SCHEMA = "repro-mem-profile/1"


def _peak_rss_kb() -> int:
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports KB; macOS reports bytes.
    if sys.platform == "darwin":
        return usage.ru_maxrss // 1024
    return usage.ru_maxrss


@pytest.fixture(scope="module")
def mem_report():
    selected = set(selected_kernels())
    pairs = [(k, t) for k, t in PAIRS if k in selected]
    if not pairs:
        pytest.skip("REPRO_KERNELS excludes every profiled kernel")
    entries = {}
    for kernel, target in pairs:
        result = optimize_pair(kernel, target)
        egraph = result.egraph
        store = egraph.freeze()
        entries[f"{kernel}/{target}"] = {
            "enodes": egraph.num_nodes,
            "eclasses": egraph.num_classes,
            "snapshot_bytes": store.nbytes,
            "snapshot_bytes_per_enode": round(
                store.nbytes / max(1, egraph.num_nodes), 1
            ),
        }
    report = {
        "schema": REPORT_SCHEMA,
        "peak_rss_kb": _peak_rss_kb(),
        "entries": entries,
    }
    report_path = Path(os.environ.get("REPRO_MEM_REPORT", "mem_profile.json"))
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"\n[mem] profile written to {report_path}")
    return report


def test_peak_rss_recorded(mem_report):
    assert mem_report["peak_rss_kb"] > 0


def test_snapshots_are_columnar_sized(mem_report):
    """A snapshot is nine int64 arrays — order tens of bytes per
    e-node.  Hundreds would mean object-graph serialization crept back
    into the worker protocol."""
    for key, entry in mem_report["entries"].items():
        assert entry["snapshot_bytes"] > 0, key
        assert entry["snapshot_bytes_per_enode"] < 500, (
            f"{key}: {entry['snapshot_bytes_per_enode']} bytes/e-node — "
            "snapshot no longer columnar?"
        )
