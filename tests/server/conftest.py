"""Shared fixtures for the daemon suite.

Every server here runs with the tiny saturation profile (3 steps,
2000 nodes) so a full request round-trip costs ~0.3s instead of the
default budget's ~10s.
"""

import pytest

from repro.api.limits import Limits
from repro.server import RemoteSession, ServeConfig
from repro.server.testing import serving

#: Small enough to keep each saturation well under a second, big
#: enough that kernels still find non-trivial solutions.
TINY = Limits(step_limit=3, node_limit=2000, time_limit=30.0)


@pytest.fixture(scope="module")
def live_server():
    """One real daemon per test module: ephemeral port, warm pool."""
    config = ServeConfig(host="127.0.0.1", port=0, limits=TINY,
                         queue_workers=4, pool_workers=2)
    with serving(config) as server:
        yield server


@pytest.fixture
def remote(live_server):
    """A thin client on the module's daemon, embedding TINY limits."""
    return RemoteSession(live_server.url, limits=TINY)
