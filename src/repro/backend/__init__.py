"""Execution substrates: interpreter-driven solution execution and
timing, numpy-backed library runtimes, and the C code generator."""

from .c_codegen import BLAS_SHIM, CodegenError, generate_c, generate_c_program
from .executor import (
    TimingResult,
    outputs_match,
    run_solution,
    time_callable,
    time_reference,
    time_solution,
    verify_solution,
)
from .library_runtime import blas_runtime, pytorch_runtime

__all__ = [
    "blas_runtime", "pytorch_runtime",
    "run_solution", "time_solution", "time_reference", "time_callable",
    "TimingResult", "outputs_match", "verify_solution",
    "generate_c", "generate_c_program", "CodegenError", "BLAS_SHIM",
]
