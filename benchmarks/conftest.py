"""Shared infrastructure for the benchmark suite.

Each module regenerates one paper artifact (table II, table III,
figures 4–7).  Saturation results are cached per (kernel, target,
limits) in :mod:`repro.experiments`, so artifacts that share runs (the
gemv figures) do not recompute them.  Rendered tables and CSVs are
written to ``benchmarks/out/``.

The files directly under ``benchmarks/out/`` are the *canonical*
full-suite reproductions of the paper's tables and figures and are
committed to the repo.  When any ``REPRO_*`` environment knob degrades
the run — ``REPRO_KERNELS`` restricting the kernel set (as the CI fast
tier does), or ``REPRO_STEP_LIMIT`` / ``REPRO_NODE_LIMIT`` /
``REPRO_TIME_LIMIT`` shrinking the saturation budget — artifacts go to
``benchmarks/out/subset/`` instead: a git-ignored scratch directory
whose ``MANIFEST.txt`` records the knobs, emptied whenever the knob
combination changes so it never presents stale files as products of
the current configuration.  Canonical data can therefore only be
overwritten by a genuine full-suite, default-budget run.

Environment knobs (see repro.experiments): ``REPRO_STEP_LIMIT``,
``REPRO_NODE_LIMIT``, ``REPRO_KERNELS``.
"""

from __future__ import annotations

import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
SUBSET_DIR = OUT_DIR / "subset"

PARTIAL_RUN_KNOBS = (
    "REPRO_KERNELS",
    "REPRO_STEP_LIMIT",
    "REPRO_NODE_LIMIT",
    "REPRO_TIME_LIMIT",
    "REPRO_SCHEDULER",
    "REPRO_INCREMENTAL",
    # Parallel search is byte-identical to serial by design, but a run
    # under this knob is exactly what the nightly determinism workflow
    # wants in subset/ so it can diff against the canonical files.
    "REPRO_SEARCH_WORKERS",
    "REPRO_APPLY_WORKERS",
    "REPRO_RULE_PROFILE",
)


def artifact_dir() -> Path:
    """Where artifacts land: canonical out/, or out/subset/ whenever an
    environment knob makes the run anything less than the full paper
    reproduction."""
    knobs = {
        name: value
        for name in PARTIAL_RUN_KNOBS
        if (value := os.environ.get(name, "").strip())
    }
    if not knobs:
        OUT_DIR.mkdir(exist_ok=True)
        return OUT_DIR
    SUBSET_DIR.mkdir(parents=True, exist_ok=True)
    manifest = SUBSET_DIR / "MANIFEST.txt"
    content = (
        "Partial benchmark run — NOT the paper reproduction.\n"
        + "".join(f"{name}={value}\n" for name, value in sorted(knobs.items()))
        + "Canonical full-suite artifacts live one directory up.\n"
    )
    if not manifest.exists() or manifest.read_text() != content:
        # New knob combination: drop artifacts from previous partial
        # runs so the manifest describes every file present.
        for stale in SUBSET_DIR.iterdir():
            if stale != manifest:
                stale.unlink()
        manifest.write_text(content)
    return SUBSET_DIR


def write_artifact(name: str, content: str) -> Path:
    """Write a rendered table/CSV under the active artifact dir and echo it."""
    path = artifact_dir() / name
    path.write_text(content)
    print(f"\n[artifact] {path}\n{content}")
    return path
