"""Library-call coverage measurement (fig. 5).

The paper measures "the ratio of time kernels spend in the library
function to validate LIAR's effective work offloading".  We reproduce
this by wrapping every runtime registry function with a timer and
comparing accumulated in-library time against the solution's total
execution time.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..ir.interp import evaluate
from ..ir.terms import Term

__all__ = ["CoverageReport", "measure_coverage", "pick_fastest"]


@dataclass
class CoverageReport:
    """Per-function and total coverage of one solution execution."""

    total_seconds: float
    per_function_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of run time spent inside library calls (0..1)."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, sum(self.per_function_seconds.values()) / self.total_seconds)

    def function_coverage(self, name: str) -> float:
        """Fraction of run time spent inside one library function."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.per_function_seconds.get(name, 0.0) / self.total_seconds)

    def breakdown(self) -> Dict[str, float]:
        """Coverage per function, ordered by share (descending)."""
        items = {
            name: self.function_coverage(name)
            for name in self.per_function_seconds
        }
        return dict(sorted(items.items(), key=lambda kv: -kv[1]))


def pick_fastest(
    terms: "list[Term]",
    inputs: Mapping[str, Any],
    runtime: Optional[Mapping[str, Callable]] = None,
    repeats: int = 3,
) -> "tuple[int, float]":
    """Index and per-run seconds of the empirically fastest term.

    The ``--top-k`` companion: the static cost model ranks candidate
    solutions, but close alternatives (a ``dot``-based vs an
    ``axpy``-based form of the same kernel) can be mis-ordered by a
    few percent; executing each candidate settles it.  Every term gets
    a warm-up evaluation, then ``repeats`` timed runs with GC disabled
    (the same noise discipline :func:`measure_coverage` uses), scored
    by its fastest run.  Ties keep the earlier — i.e. statically
    cheaper — candidate, so the model remains the tie-breaker.
    """
    if not terms:
        raise ValueError("pick_fastest needs at least one candidate term")
    registry = dict(runtime or {})
    best_index, best_seconds = 0, float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for index, term in enumerate(terms):
            evaluate(term, inputs, registry)  # warm-up: caches, allocator
            fastest = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                evaluate(term, inputs, registry)
                fastest = min(fastest, time.perf_counter() - t0)
            if fastest < best_seconds:
                best_index, best_seconds = index, fastest
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_index, best_seconds


class _TimedRegistry:
    """Wraps a runtime registry, accumulating per-function wall time.

    Nested library calls (a library function implemented in terms of
    another) do not occur in our runtimes, so plain accumulation is
    exact.
    """

    def __init__(self, runtime: Mapping[str, Callable]) -> None:
        self.seconds: Dict[str, float] = {}
        self._wrapped: Dict[str, Callable] = {
            name: self._wrap(name, fn) for name, fn in runtime.items()
        }

    def _wrap(self, name: str, fn: Callable) -> Callable:
        def timed(*args: Any) -> Any:
            t0 = time.perf_counter()
            try:
                return fn(*args)
            finally:
                self.seconds[name] = (
                    self.seconds.get(name, 0.0) + time.perf_counter() - t0
                )
        return timed

    @property
    def registry(self) -> Dict[str, Callable]:
        return self._wrapped


def measure_coverage(
    term: Term,
    inputs: Mapping[str, Any],
    runtime: Optional[Mapping[str, Callable]] = None,
    repeats: int = 3,
) -> CoverageReport:
    """Execute ``term`` and report the ratio of time in library calls.

    Each repeat is timed individually and the report accumulates only
    the fastest half of the repeats (the ``timeit`` min-of-runs idea
    applied to a ratio): scheduler preemption and allocator stalls land
    almost entirely in the interpreted code *around* the library calls,
    so interfered repeats systematically under-report coverage.  A
    warm-up evaluation and disabling GC during measurement remove the
    two largest remaining noise sources, making the reported ratio
    stable run-to-run even on a loaded machine.
    """
    timed = _TimedRegistry(runtime or {})
    evaluate(term, inputs, timed.registry)  # warm-up: caches, allocator
    samples = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            before = dict(timed.seconds)
            t0 = time.perf_counter()
            evaluate(term, inputs, timed.registry)
            elapsed = time.perf_counter() - t0
            delta = {
                name: seconds - before.get(name, 0.0)
                for name, seconds in timed.seconds.items()
                if seconds > before.get(name, 0.0)
            }
            samples.append((elapsed, delta))
    finally:
        if gc_was_enabled:
            gc.enable()
    samples.sort(key=lambda sample: sample[0])
    kept = samples[: max(1, (len(samples) + 1) // 2)]
    total = sum(elapsed for elapsed, _ in kept)
    per_function: Dict[str, float] = {}
    for _, delta in kept:
        for name, seconds in delta.items():
            per_function[name] = per_function.get(name, 0.0) + seconds
    return CoverageReport(total_seconds=total, per_function_seconds=per_function)
