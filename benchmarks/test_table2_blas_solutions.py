"""Table II: solutions found per kernel when targeting BLAS.

Regenerates the paper's table layout (kernel, library calls in the
extracted solution, saturation steps, e-node count) from our engine.
Absolute e-node counts and step counts differ from the paper's Scala
engine (see DESIGN.md §3); the *solutions* are the claim under test:
every kernel offloads to BLAS calls, and the marquee rows (gemv →
``gemv``, vsum → ``dot``, memset → ``memset``, 1mm/doitgen → ``gemm``)
match the paper.
"""

import pytest

from repro.analysis.reporting import (
    render_solution_table,
    solution_row,
    solutions_csv,
)
from repro.backend.executor import verify_solution
from repro.experiments import optimize_pair, selected_kernels
from repro.kernels import registry
from repro.targets import blas_target

from conftest import write_artifact

_ROWS = {}


@pytest.mark.parametrize("kernel_name", selected_kernels())
def test_blas_solution(benchmark, kernel_name):
    result = benchmark.pedantic(
        lambda: optimize_pair(kernel_name, "blas"),
        rounds=1, iterations=1,
    )
    _ROWS[kernel_name] = solution_row(result)
    # Every kernel must offload at least one library call (table II
    # shows idioms found in each kernel).
    assert result.library_calls, f"{kernel_name}: no idioms found"
    # Rewriting must be semantics-preserving: the extracted solution
    # computes the reference output.
    kernel = registry.get(kernel_name)
    assert verify_solution(kernel, result.best_term, blas_target().runtime)


def test_marquee_rows_match_paper(benchmark):
    """Spot-check the rows the paper discusses by name (§VI-B)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    expectations = {
        "gemv": {"gemv": 1},                      # "simply gemvF(α,A,B,β,C)"
        "vsum": {"dot": 1},                       # latent dot product
        "memset": {"memset": 1},
        "axpy": {"axpy": 1},
    }
    for kernel_name, expected in expectations.items():
        if kernel_name not in _ROWS:
            pytest.skip("kernel subset excludes marquee kernels")
        result = optimize_pair(kernel_name, "blas")
        assert result.library_calls == expected, kernel_name
    if "1mm" in _ROWS:
        calls = optimize_pair("1mm", "blas").library_calls
        assert any(name.startswith("gemm") for name in calls), calls
    if "doitgen" in _ROWS:
        calls = optimize_pair("doitgen", "blas").library_calls
        assert any(name.startswith("gemm") or name.startswith("gemv")
                   for name in calls), calls


def test_emit_table2(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [_ROWS[name] for name in selected_kernels() if name in _ROWS]
    assert rows, "run the per-kernel benchmarks first"
    write_artifact(
        "table2_blas_solutions.txt",
        render_solution_table(rows, "Table II: BLAS solutions per kernel"),
    )
    write_artifact("blas-overview.csv", solutions_csv(rows))
