"""Semantic soundness of the rewrite system, property-based.

The load-bearing invariant of the whole approach: every expression an
e-class comes to represent after saturation is *semantically equal* to
the original.  We check it by generating random programs, saturating
with the full rule sets, extracting several representatives of the
root class, and evaluating all of them on random inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend.executor import outputs_match
from repro.backend.library_runtime import blas_runtime, pytorch_runtime
from repro.egraph import EGraph, ShapeAnalysis
from repro.extraction import GreedyExtractor as Extractor
from repro.saturation import Runner
from repro.ir import builders as b
from repro.ir.interp import evaluate
from repro.ir.shapes import SCALAR, vector
from repro.ir.terms import Const, Symbol, Term
from repro.rules import blas_rules, core_rules, pytorch_rules, scalar_rules
from repro.targets.cost import BlasCostModel, TorchCostModel

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def scalar_exprs(draw, depth=0):
    """Random closed scalar expressions over symbols x, y and constants."""
    if depth >= 3 or draw(st.booleans()):
        return draw(st.one_of(
            st.integers(-3, 3).map(Const),
            st.sampled_from([Symbol("x"), Symbol("y")]),
        ))
    left = draw(scalar_exprs(depth=depth + 1))
    right = draw(scalar_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["+", "*", "-"]))
    from repro.ir.terms import Call

    return Call(op, (left, right))


@st.composite
def vector_exprs(draw, size=4):
    """Random vector expressions built from builds over scalar bodies."""
    body = draw(scalar_exprs(depth=2))
    use_index = draw(st.booleans())
    if use_index:
        body = body + Symbol("xs")[b.v(0)]
    return b.build(size, b.lam(body))


def _root_variants(egraph, root, cost_model, limit=4):
    """The extractor's choice plus a few small representatives."""
    variants = []
    extraction = Extractor(egraph, cost_model).extract(root)
    if extraction.term is not None:
        variants.append(extraction.term)
    variants.extend(egraph.extract_candidates(root, limit=limit))
    return [_close(v) for v in variants]


def _close(term: Term) -> Term:
    """Bind stray free De Bruijn indices to 0.

    Saturation legitimately places *open* representatives in the class
    of a closed term — e.g. ``e ≡ (λ e↑) •0`` from R-INTROLAMBDA holds
    for every value of ``•0``.  To evaluate such a representative at
    the top level we may bind its free variables to anything; index 0
    is in bounds for every array in these tests.
    """
    from repro.ir.terms import free_indices

    free = free_indices(term)
    if not free:
        return term
    for _ in range(max(free) + 1):
        term = b.app(b.lam(term), 0)
    return term


class TestScalarSoundness:
    @SETTINGS
    @given(scalar_exprs())
    def test_scalar_rules_preserve_value(self, term):
        inputs = {"x": 1.5, "y": -2.25}
        expected = evaluate(term, inputs)
        egraph = EGraph(ShapeAnalysis({"x": SCALAR, "y": SCALAR}))
        root = egraph.add_term(term)
        Runner(egraph, scalar_rules(), step_limit=3, node_limit=2000).run(root)
        for variant in _root_variants(egraph, root, BlasCostModel()):
            got = evaluate(variant, inputs)
            assert np.isclose(got, expected), f"{variant} != {expected}"


class TestVectorSoundness:
    @SETTINGS
    @given(vector_exprs())
    def test_blas_saturation_preserves_value(self, term):
        rng = np.random.default_rng(0)
        inputs = {"x": 1.5, "y": -0.5, "xs": rng.standard_normal(4)}
        expected = evaluate(term, inputs)
        shapes = {"x": SCALAR, "y": SCALAR, "xs": vector(4)}
        egraph = EGraph(ShapeAnalysis(shapes))
        root = egraph.add_term(term)
        rules = blas_rules() + core_rules() + scalar_rules()
        Runner(egraph, rules, step_limit=3, node_limit=3000).run(root)
        for variant in _root_variants(egraph, root, BlasCostModel()):
            got = evaluate(variant, inputs, blas_runtime())
            assert outputs_match(got, expected), str(variant)

    @SETTINGS
    @given(vector_exprs())
    def test_pytorch_saturation_preserves_value(self, term):
        rng = np.random.default_rng(1)
        inputs = {"x": 0.75, "y": 2.0, "xs": rng.standard_normal(4)}
        expected = evaluate(term, inputs)
        shapes = {"x": SCALAR, "y": SCALAR, "xs": vector(4)}
        egraph = EGraph(ShapeAnalysis(shapes))
        root = egraph.add_term(term)
        rules = pytorch_rules() + core_rules() + scalar_rules()
        Runner(egraph, rules, step_limit=3, node_limit=3000).run(root)
        for variant in _root_variants(egraph, root, TorchCostModel()):
            got = evaluate(variant, inputs, pytorch_runtime())
            assert outputs_match(got, expected), str(variant)


class TestKernelSolutionSoundness:
    """Every per-step solution of the fast kernels must compute the
    reference output (failure injection: a single unsound rule would
    trip this)."""

    @pytest.mark.parametrize("kernel_name,target_name", [
        ("vsum", "blas"), ("vsum", "pytorch"),
        ("memset", "blas"), ("memset", "pytorch"),
        ("axpy", "blas"),
    ])
    def test_every_step_solution_is_correct(self, kernel_name, target_name):
        from repro.kernels import registry
        from repro.pipeline import optimize
        from repro.targets import make_target

        kernel = registry.get(kernel_name)
        target = make_target(target_name)
        result = optimize(kernel, target, step_limit=5, node_limit=5000)
        inputs = kernel.inputs(3)
        expected = kernel.reference(inputs)
        for record in result.steps:
            if record.best_term is None:
                continue
            got = evaluate(record.best_term, inputs, target.runtime)
            assert outputs_match(got, expected), (
                f"step {record.step} solution wrong: {record.best_term}"
            )
