"""Unit and property tests for De Bruijn shift/subst (repro.ir.debruijn).

The shift/subst algebra is the foundation rules R-BETAREDUCE and
R-INTROLAMBDA stand on (§IV-B3); the property tests check the standard
identities on randomized terms.
"""

import pytest
from hypothesis import given, strategies as st

from repro.ir import builders as b
from repro.ir.debruijn import (
    UnshiftError,
    beta_reduce,
    normalize,
    shift,
    subst,
    try_unshift,
)
from repro.ir.terms import App, Const, Lam, Symbol, Term, Var, free_indices


class TestShift:
    def test_shift_free_variable(self):
        assert shift(b.v(0)) == b.v(1)
        assert shift(b.v(3), by=2) == b.v(5)

    def test_shift_zero_is_identity(self):
        term = b.lam(b.v(0) + b.v(1))
        assert shift(term, 0) is term

    def test_shift_respects_binders(self):
        # λ •0 is closed: nothing shifts.
        assert shift(b.lam(b.v(0))) == b.lam(b.v(0))
        # λ •1's free variable (outer •0) shifts to •2 under the lambda.
        assert shift(b.lam(b.v(1))) == b.lam(b.v(2))

    def test_shift_constants_and_symbols(self):
        assert shift(Const(5)) == Const(5)
        assert shift(Symbol("xs")) == Symbol("xs")

    def test_shift_through_build_and_ifold(self):
        term = b.build(4, b.lam(b.v(1)))
        assert shift(term) == b.build(4, b.lam(b.v(2)))
        term = b.ifold(4, b.v(0), b.lam2(b.v(2)))
        assert shift(term) == b.ifold(4, b.v(1), b.lam2(b.v(3)))

    def test_negative_shift(self):
        assert shift(b.v(2), -1) == b.v(1)

    def test_negative_shift_raises_on_capture(self):
        with pytest.raises(UnshiftError):
            shift(b.v(0), -1)

    def test_try_unshift_success(self):
        assert try_unshift(b.v(2), 2) == b.v(0)
        assert try_unshift(Symbol("A"), 2) == Symbol("A")

    def test_try_unshift_failure_returns_none(self):
        assert try_unshift(b.v(0), 1) is None
        assert try_unshift(b.sym("x")[b.v(1)], 2) is None


class TestSubst:
    def test_subst_replaces_zero(self):
        assert subst(b.v(0), Symbol("y")) == Symbol("y")

    def test_subst_lowers_other_free_vars(self):
        # The paper's example: subst(•1, y) = •0.
        assert subst(b.v(1), Symbol("y")) == b.v(0)

    def test_subst_under_binder_shifts_value(self):
        # (λ λ •1) y → λ y  when y is •0 outside: the substituted value
        # must be shifted to survive the inner binder.
        term = b.lam(b.v(1))
        result = subst(term, b.v(0))
        assert result == b.lam(b.v(1))

    def test_subst_into_arithmetic(self):
        term = b.v(0) * b.v(0) + b.v(1)
        assert subst(term, Const(3)) == Const(3) * Const(3) + b.v(0)

    def test_subst_closed_value_everywhere(self):
        term = b.lam(b.v(0) + b.v(1))
        assert subst(term, Const(7)) == b.lam(b.v(0) + Const(7))


class TestBetaReduce:
    def test_redex(self):
        redex = b.app(b.lam(b.v(0) + 1), 5)
        assert beta_reduce(redex) == Const(5) + 1

    def test_non_redex_returns_none(self):
        assert beta_reduce(b.v(0)) is None
        assert beta_reduce(b.app(b.sym("f"), 1)) is None

    def test_paper_shift_example(self):
        # §IV-B2: if e = •0 then (λ e↑) y = (λ •1) y, and beta-reducing
        # recovers e.
        e = b.v(0)
        wrapped = b.app(b.lam(shift(e)), b.sym("y"))
        assert beta_reduce(wrapped) == e


class TestNormalize:
    def test_nested_redexes(self):
        term = b.app(b.lam(b.app(b.lam(b.v(0)), b.v(0))), 4)
        assert normalize(term) == Const(4)

    def test_tuple_projections(self):
        term = b.fst(b.tup(1, 2)) + b.snd(b.tup(1, 2))
        assert normalize(term) == Const(1) + Const(2)

    def test_normal_form_unchanged(self):
        term = b.build(4, b.lam(b.v(0)))
        assert normalize(term) == term


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

def _terms(max_depth: int = 4) -> st.SearchStrategy[Term]:
    """Random IR terms (lambda fragment + arithmetic)."""
    leaves = st.one_of(
        st.integers(min_value=0, max_value=3).map(b.v),
        st.integers(min_value=-5, max_value=5).map(Const),
        st.sampled_from(["x", "y", "zs"]).map(Symbol),
    )

    def extend(children: st.SearchStrategy[Term]) -> st.SearchStrategy[Term]:
        return st.one_of(
            children.map(b.lam),
            st.tuples(children, children).map(lambda p: App(p[0], p[1])),
            st.tuples(children, children).map(lambda p: p[0] + p[1]),
            st.tuples(children, children).map(lambda p: p[0] * p[1]),
            st.tuples(st.integers(1, 4), children.map(b.lam)).map(
                lambda p: b.build(p[0], p[1])
            ),
            st.tuples(children, children).map(lambda p: p[0][p[1]]),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@given(_terms())
def test_shift_then_unshift_roundtrip(term):
    assert shift(shift(term, 1), -1) == term


@given(_terms(), st.integers(1, 3), st.integers(1, 3))
def test_shift_composes(term, a, c):
    assert shift(shift(term, a), c) == shift(term, a + c)


@given(_terms())
def test_shift_preserves_closedness(term):
    if not free_indices(term):
        assert shift(term, 1) == term


@given(_terms(), _terms())
def test_subst_of_shifted_is_identity(term, value):
    # subst(e↑, y) == e: the variable substituted for does not occur.
    assert subst(shift(term, 1), value) == term


@given(_terms())
def test_free_indices_shift_by_one(term):
    shifted = shift(term, 1)
    assert free_indices(shifted) == {i + 1 for i in free_indices(term)}


@given(_terms(), _terms())
def test_subst_eliminates_var_zero(term, value):
    if not free_indices(value):
        result = subst(term, value)
        expected = {i - 1 for i in free_indices(term) if i > 0}
        assert free_indices(result) == expected
