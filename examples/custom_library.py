#!/usr/bin/env python3
"""Retargeting LIAR to a new library in ~40 lines (§IV-C2's example).

The paper argues LIAR "can be easily adapted to different libraries by
providing appropriate idiom descriptions".  This example defines a toy
two-function vector library —

* ``addvec(a, b)``  — elementwise vector addition,
* ``constvec(c, n)`` — a constant vector —

as (1) two idiom rewrite rules written in the same minimalist IR, and
(2) a small cost model, registers it under the name ``"toy"`` with
``@register_target`` — making it a first-class target, addressable by
name everywhere a built-in is — and optimizes the §IV-C2 program
``build n (λ xs[•0] + 42)`` through a :class:`~repro.api.Session`.
The constant vector is *latent*: the engine manufactures it via
R-INTROLAMBDA / R-INTROINDEXBUILD and then recognizes both idioms:

    addvec(xs, constvec(42, n))

Run:  python examples/custom_library.py
"""

import numpy as np

from repro.api import Session, register_target
from repro.ir import pretty
from repro.ir.shapes import vector
from repro.ir.terms import Call, Const
from repro.rules.dsl import n, padd, pbuild, pcall, pdb, pindex, plam, pv
from repro.targets.base import Target
from repro.targets.cost import BaseCostModel
from repro.egraph.rewrite import dynamic_rule, rewrite
from repro.rules import core_rules, scalar_rules
from repro.ir import builders as b


@register_target("toy")
def make_toy_target() -> Target:
    # --- idiom rules, written in the IR itself ------------------------
    addvec = rewrite(
        "I-AddVec",
        pbuild(n("N"), plam(padd(pindex(pv("A", 1), pdb(0)),
                                 pindex(pv("B", 1), pdb(0))))),
        pcall("addvec", pv("A"), pv("B")),
    )

    def constvec_apply(egraph, match):
        size = match.bindings["N"]
        constant = match.bindings["c"]
        return [Call("constvec", (constant.term, Const(size)))]

    constvec = dynamic_rule(
        "I-ConstVec", pbuild(n("N"), plam(pv("c", 1))), constvec_apply
    )

    # --- cost model: discounted library calls -------------------------
    class ToyCost(BaseCostModel):
        def library_cost(self, egraph, class_id, name, enode, child_costs):
            if name == "addvec":
                length = self._vector_length(egraph, enode.children[0])
                if length is None:
                    return float("inf")
                return sum(child_costs) + 0.5 * length
            if name == "constvec":
                length = self._const_value(egraph, enode.children[1])
                if length is None:
                    return float("inf")
                return sum(child_costs) + 0.5 * length
            return float("inf")

    # --- executable runtime -------------------------------------------
    runtime = {
        "addvec": lambda x, y: np.asarray(x) + np.asarray(y),
        "constvec": lambda c, size: np.full(int(size), float(c)),
    }

    return Target(
        name="toy",
        rules=[addvec, constvec] + core_rules() + scalar_rules(),
        cost_model=ToyCost(),
        runtime=runtime,
        library_functions=("addvec", "constvec"),
    )


def main() -> None:
    size = 16
    program = b.build(size, b.lam(b.sym("xs")[b.v(0)] + 42))
    print(f"program : {pretty(program)}")

    # "toy" now resolves by name, exactly like "blas" or "pytorch".
    session = Session()
    result = session.optimize_term(
        program, "toy", {"xs": vector(size)},
        step_limit=5, node_limit=6000, kernel_name="add42",
    )

    print(f"solution: {pretty(result.best_term)}")
    assert result.library_calls == {"addvec": 1, "constvec": 1}, result.library_calls

    from repro.backend import run_solution

    xs = np.arange(size, dtype=float)
    out = run_solution(result.best_term, {"xs": xs}, session.target("toy").runtime)
    assert np.allclose(out, xs + 42)
    print("verified: addvec(xs, constvec(42)) == xs + 42 ✓")

    # The registered target also serves batch requests alongside the
    # built-ins...
    reports = session.optimize_many(
        [("vsum", "toy"), ("vsum", "blas")], parallel=False
    )
    for report in reports:
        print(f"batch   : {report.kernel} @ {report.target}: "
              f"[{report.solution_summary}]")

    # ...and repeating the batch is answered entirely from the cache.
    again = session.optimize_many([("vsum", "toy"), ("vsum", "blas")],
                                  parallel=False)
    assert all(r.cache_hit for r in again)
    print("repeat batch answered from the session cache ✓")


if __name__ == "__main__":
    main()
