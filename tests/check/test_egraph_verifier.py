"""E-graph invariant verifier tests: healthy graphs come back clean,
seeded corruptions trigger their specific EGxxx codes, and the
``Limits(check=True)`` / ``REPRO_CHECK=1`` wiring aborts a run at the
step that broke an invariant."""

import pytest

from repro.check import CheckFailure, verify, verify_or_raise
from repro.check.diagnostics import Severity
from repro.egraph import EGraph
from repro.egraph.analysis import ShapeAnalysis
from repro.ir import parse
from repro.kernels import registry
from repro.saturation import Runner
from repro.targets import blas_target


def _healthy_egraph():
    """A saturated dot/blas graph: merges, payload variety, parents."""
    kernel = registry.get("dot")
    target = blas_target()
    eg = EGraph(ShapeAnalysis(kernel.symbol_shapes))
    root = eg.add_term(kernel.term)
    Runner(eg, target.rules, step_limit=3, node_limit=4000).run(
        root, cost_model=target.cost_model
    )
    return eg


def _codes(findings):
    return {f.code for f in findings}


class TestHealthyGraphs:
    def test_saturated_graph_is_clean(self):
        assert verify(_healthy_egraph()) == []

    def test_empty_graph_is_clean(self):
        assert verify(EGraph()) == []

    def test_fresh_term_graph_is_clean(self):
        eg = EGraph()
        eg.add_term(parse("(x + 0) * y"))
        assert verify(eg) == []

    def test_dirty_graph_is_rebuilt_first(self):
        eg = EGraph()
        a = eg.add_term(parse("a"))
        b = eg.add_term(parse("b"))
        eg.add_term(parse("a + b"))
        eg.merge(a, b)
        assert eg._pending  # invariants undefined pre-rebuild
        assert verify(eg) == []
        assert not eg._pending

    def test_verify_or_raise_passes_clean_graph(self):
        verify_or_raise(_healthy_egraph(), context="test")


class TestSeededCorruption:
    def test_eg101_memo_remapped(self):
        eg = _healthy_egraph()
        ids = eg.class_ids()
        node = next(iter(eg._memo))
        victim = eg._memo[node]
        other = next(
            cid for cid in ids if not eg.same(cid, victim)
        )
        eg._memo[node] = other
        findings = verify(eg, snapshot=False)
        assert "EG101" in _codes(findings)

    def test_eg102_congruence_split(self):
        # The same canonical node planted in a second class.
        eg = _healthy_egraph()
        donor_id, donor = next(
            (cid, ec) for cid, ec in eg._classes.items() if ec.nodes
        )
        node = next(iter(donor.nodes))
        other = next(
            ec for cid, ec in eg._classes.items()
            if not eg.same(cid, donor_id)
        )
        other.nodes[node] = None
        findings = verify(eg, snapshot=False)
        assert "EG102" in _codes(findings)

    def test_eg103_class_record_mismatch(self):
        eg = _healthy_egraph()
        cid = eg.class_ids()[0]
        eg._classes[cid].class_id = cid + 999_999
        findings = verify(eg, snapshot=False)
        assert "EG103" in _codes(findings)

    def test_eg104_slot_owner_corrupted(self):
        eg = _healthy_egraph()
        slot = next(
            s for ec in eg._classes.values() for s in ec.parents
        )
        eg._slot_class[slot] = 999_999_999
        findings = verify(eg, snapshot=False)
        assert "EG104" in _codes(findings)

    def test_eg104_slot_columns_diverge(self):
        eg = _healthy_egraph()
        eg._slot_class.append(0)
        findings = verify(eg, snapshot=False)
        assert "EG104" in _codes(findings)

    def test_eg105_parent_entry_dropped(self):
        # Remove every parent entry of a class that has parents: its
        # parent nodes are then unreachable from the worklist.
        eg = _healthy_egraph()
        eclass = next(
            ec for ec in eg._classes.values() if ec.parents
        )
        eclass.parents = []
        findings = verify(eg, snapshot=False)
        assert "EG105" in _codes(findings)

    def test_eg106_snapshot_disagreement(self, monkeypatch):
        # A snapshot is derived from the live graph, so live-side
        # corruption cannot desynchronize it; EG106 exists to catch
        # bugs in the freeze/attach layer itself.  Seed one: corrupt
        # the frozen union-find column on its way out of from_egraph.
        from repro.egraph import store as store_mod

        eg = _healthy_egraph()
        roots = eg.class_ids()
        original = store_mod.FlatStore.from_egraph.__func__

        def corrupted(cls, egraph):
            flat = original(cls, egraph)
            flat.uf[roots[0]] = roots[1]
            return flat

        monkeypatch.setattr(
            store_mod.FlatStore, "from_egraph", classmethod(corrupted)
        )
        findings = verify(eg, snapshot=True)
        assert "EG106" in _codes(findings)

    def test_all_corruption_findings_are_errors(self):
        eg = _healthy_egraph()
        slot = next(
            s for ec in eg._classes.values() for s in ec.parents
        )
        eg._slot_class[slot] = 999_999_999
        for finding in verify(eg, snapshot=False):
            if finding.code != "EG104":
                continue
            assert finding.severity is Severity.ERROR

    def test_finding_flood_is_capped(self):
        from repro.check.egraph import MAX_PER_CODE

        eg = _healthy_egraph()
        for cid in eg.class_ids():
            eg._classes[cid].class_id = cid + 999_999
        findings = verify(eg, snapshot=False)
        errors = [f for f in findings if f.code == "EG103"
                  and f.severity is Severity.ERROR]
        notes = [f for f in findings if f.code == "EG103"
                 and f.severity is Severity.NOTE]
        assert len(errors) <= MAX_PER_CODE
        assert notes  # "N further findings suppressed"

    def test_verify_or_raise_carries_diagnostics(self):
        eg = _healthy_egraph()
        cid = eg.class_ids()[0]
        eg._classes[cid].class_id = cid + 999_999
        with pytest.raises(CheckFailure) as excinfo:
            verify_or_raise(eg, snapshot=False, context="after step 2")
        assert "after step 2" in str(excinfo.value)
        assert any(d.code == "EG103" for d in excinfo.value.diagnostics)


class TestRunnerWiring:
    def test_check_true_runs_hook_every_step(self):
        kernel = registry.get("dot")
        target = blas_target()
        eg = EGraph(ShapeAnalysis(kernel.symbol_shapes))
        root = eg.add_term(kernel.term)
        runner = Runner(
            eg, target.rules, step_limit=2, node_limit=3000, check=True
        )
        seen = []
        runner.on_step_end.append(
            lambda _r, step, _rec: seen.append(step)
        )
        result = runner.run(root, cost_model=target.cost_model)
        assert seen == list(range(1, result.num_steps + 1))

    def test_corruption_mid_run_aborts_at_that_step(self):
        kernel = registry.get("dot")
        target = blas_target()
        eg = EGraph(ShapeAnalysis(kernel.symbol_shapes))
        root = eg.add_term(kernel.term)
        runner = Runner(
            eg, target.rules, step_limit=4, node_limit=4000, check=True
        )

        def corrupt(runner_, step, _record):
            if step == 2:
                cid = runner_.egraph.class_ids()[0]
                runner_.egraph._classes[cid].class_id = cid + 999_999

        # Corrupt *before* the verifier hook sees step 2's state.
        runner.on_step_end.insert(0, corrupt)
        with pytest.raises(CheckFailure, match="after step 2"):
            runner.run(root, cost_model=target.cost_model)

    def test_limits_check_flows_from_env(self, monkeypatch):
        from repro.api import Limits

        monkeypatch.setenv("REPRO_CHECK", "1")
        assert Limits.from_env().check is True
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert Limits.from_env().check is False

    def test_check_excluded_from_cache_key(self):
        from repro.api import Limits

        limits = Limits()
        assert limits.key() == limits.override(check=True).key()

    def test_session_check_egraph(self):
        from repro.api import Session

        assert Session().check_egraph(_healthy_egraph()) == []
