"""The greedy (tree-cost) extractor: ported-verbatim behaviour plus
the new fixpoint iteration cap."""

import math

import pytest

from repro.egraph import EGraph, ShapeAnalysis
from repro.extraction import AstSizeCost, FixpointDivergence, GreedyExtractor
from repro.ir import parse
from repro.ir.terms import Call, Symbol
from repro.targets.cost import BaseCostModel


class TestGreedyExtractor:
    def test_single_representation(self):
        eg = EGraph()
        root = eg.add_term(parse("a + 1"))
        result = GreedyExtractor(eg, AstSizeCost()).extract(root)
        assert result.term == parse("a + 1")
        assert result.cost == pytest.approx(3.0)

    def test_picks_cheaper_representation(self):
        eg = EGraph()
        root = eg.add_term(parse("a + (b - b)"))
        eg.merge(root, eg.add_term(parse("a + 0")))
        eg.rebuild()
        result = GreedyExtractor(eg, AstSizeCost()).extract(root)
        assert result.term == parse("a + 0")

    def test_cyclic_graph_terminates(self):
        eg = EGraph()
        fx = eg.add_term(Call("f", (Symbol("x"),)))
        x = eg.add_term(Symbol("x"))
        eg.merge(fx, x)
        eg.rebuild()
        result = GreedyExtractor(eg, AstSizeCost()).extract(x)
        assert result.term == Symbol("x")

    def test_infinite_cost_for_unknown_library_calls(self):
        eg = EGraph(ShapeAnalysis({}))
        root = eg.add_term(parse("dot(a, c)"))
        result = GreedyExtractor(eg, BaseCostModel()).extract(root)
        assert result.term is None
        assert math.isinf(result.cost)
        assert result.chosen == {}


class TestIterationCap:
    def test_cap_raises_with_diagnostic(self):
        eg = EGraph()
        eg.add_term(parse("a + (b + (c + d))"))  # needs several passes
        with pytest.raises(FixpointDivergence) as excinfo:
            GreedyExtractor(eg, AstSizeCost(), max_iterations=1)
        message = str(excinfo.value)
        assert "greedy" in message
        assert "cost fixpoint" in message
        assert "non-monotone" in message
        assert excinfo.value.classes  # names the still-changing classes

    def test_default_cap_is_generous(self):
        eg = EGraph()
        root = eg.add_term(parse("a + (b + (c + d))"))
        result = GreedyExtractor(eg, AstSizeCost()).extract(root)
        assert result.cost == pytest.approx(7.0)
