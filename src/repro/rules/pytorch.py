"""PyTorch idiom rules (listing 5 of the paper).

Functions and semantics:

* ``dot(A, B)``      — vector dot product (``torch.dot``);
* ``sum(A)``         — vector element sum (``torch.sum``);
* ``mv(A, B)``       — matrix–vector product ``A·B`` (``torch.mv``);
* ``mm(A, B)``       — matrix–matrix product ``A·B`` (``torch.mm``);
* ``transpose(A)``   — matrix transpose;
* ``add(A, B)``      — polymorphic elementwise addition;
* ``mul(α, A)``      — polymorphic scalar–tensor product;
* ``full(c, N)``     — length-``N`` constant vector (``torch.full``).

Two notation fixes relative to the listing (documented in DESIGN.md):

* I-MATVEC / I-MATMAT bind the build variable as ``•0`` (the listing
  prints ``•1`` under a single lambda, where ``•1`` would dangle).
* I-MATMAT is stated as
  ``build N (λ mv(B↑, A↑[•0])) → mm(A, transpose(B))``:
  per-row ``B·A[i]`` computes ``A·Bᵀ``, which is ``mm(A, Bᵀ)`` under
  standard ``torch.mm`` semantics.  This is exactly the form the
  paper's own doitgen solution exhibits (``mm(A[•0], transpose(B))``,
  §VI-B), and I-TRANSPOSETWICE collapses the transposes when the
  source already contained one.
* ``full`` carries its length for executability, like BLAS ``memset``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..egraph.egraph import ClassRef, EGraph
from ..egraph.pattern import ClassBinding, PVar, SizeVar
from ..egraph.rewrite import Match, Rule, dynamic_rule, rewrite
from ..ir.shapes import Array
from ..ir.terms import Call, Const, Term
from .dsl import (
    n,
    padd,
    pbuild,
    pcall,
    pconst,
    pdb,
    pifold,
    pindex,
    plam,
    plam2,
    pmul,
    pv,
)

__all__ = ["pytorch_rules", "PYTORCH_FUNCTIONS"]

PYTORCH_FUNCTIONS = (
    "dot",
    "sum",
    "mv",
    "mm",
    "transpose",
    "add",
    "mul",
    "full",
)


def dot_rule() -> Rule:
    """I-DOT (same shape as the BLAS rule)."""
    lhs = pifold(
        n("N"),
        pconst(0),
        plam2(
            padd(
                pmul(pindex(pv("A", 2), pdb(1)), pindex(pv("B", 2), pdb(1))),
                pdb(0),
            )
        ),
    )
    return rewrite("I-Dot", lhs, pcall("dot", pv("A"), pv("B")))


def vec_sum_rule() -> Rule:
    """I-VECSUM: ``ifold N 0 (λ λ A↑↑[•1] + •0) → sum(A)``."""
    lhs = pifold(
        n("N"),
        pconst(0),
        plam2(padd(pindex(pv("A", 2), pdb(1)), pdb(0))),
    )
    return rewrite("I-VecSum", lhs, pcall("sum", pv("A")))


def matvec_rule() -> Rule:
    """I-MATVEC: ``build N (λ dot(A↑[•0], B↑)) → mv(A, B)``."""
    lhs = pbuild(
        n("N"),
        plam(pcall("dot", pindex(pv("A", 1), pdb(0)), pv("B", 1))),
    )
    return rewrite("I-MatVec", lhs, pcall("mv", pv("A"), pv("B")))


def matmat_rule() -> Rule:
    """I-MATMAT: ``build N (λ mv(B↑, A↑[•0])) → mm(A, transpose(B))``."""
    lhs = pbuild(
        n("N"),
        plam(pcall("mv", pv("B", 1), pindex(pv("A", 1), pdb(0)))),
    )
    rhs = pcall("mm", pv("A"), pcall("transpose", pv("B")))
    return rewrite("I-MatMat", lhs, rhs)


def transpose_rule() -> Rule:
    """I-TRANSPOSE: ``build N (λ build M (λ A↑↑[•0][•1])) → transpose(A)``."""
    lhs = pbuild(
        n("N"),
        plam(pbuild(n("M"), plam(pindex(pindex(pv("A", 2), pdb(0)), pdb(1))))),
    )
    return rewrite("I-Transpose", lhs, pcall("transpose", pv("A")))


def transpose_twice_rules() -> List[Rule]:
    """I-TRANSPOSETWICE: ``transpose(transpose(A)) = A``.

    The collapsing direction is a plain rewrite; the inflating
    direction (``A → transpose(transpose(A))``) would match every
    class, so it is guarded to classes whose shape analysis says
    *matrix*.
    """
    collapse = rewrite(
        "I-TransposeTwice",
        pcall("transpose", pcall("transpose", pv("A"))),
        pv("A"),
    )

    def inflate_apply(egraph: EGraph, match: Match) -> Sequence[Term]:
        binding = match.bindings["A"]
        assert isinstance(binding, ClassBinding)
        shape = egraph.data_of(binding.class_id)
        if not (isinstance(shape, Array) and len(shape.dims) == 2):
            return []
        return [
            Call("transpose", (Call("transpose", (ClassRef(binding.class_id),)),))
        ]

    inflate = dynamic_rule("I-TransposeTwice-rev", PVar("A"), inflate_apply)
    return [collapse, inflate]


def add_vec_rule() -> Rule:
    """I-ADDVEC: ``build N (λ A↑[•0] + B↑[•0]) → add(A, B)``."""
    lhs = pbuild(
        n("N"),
        plam(padd(pindex(pv("A", 1), pdb(0)), pindex(pv("B", 1), pdb(0)))),
    )
    return rewrite("I-AddVec", lhs, pcall("add", pv("A"), pv("B")))


def lift_add_rule() -> Rule:
    """I-LIFTADD: ``build N (λ add(A↑[•0], B↑[•0])) → add(A, B)``."""
    lhs = pbuild(
        n("N"),
        plam(pcall("add", pindex(pv("A", 1), pdb(0)), pindex(pv("B", 1), pdb(0)))),
    )
    return rewrite("I-LiftAdd", lhs, pcall("add", pv("A"), pv("B")))


def mul_scalar_and_vec_rule() -> Rule:
    """I-MULSCALARANDVEC: ``build N (λ α↑ * A↑[•0]) → mul(α, A)``."""
    lhs = pbuild(
        n("N"),
        plam(pmul(pv("alpha", 1), pindex(pv("A", 1), pdb(0)))),
    )
    return rewrite("I-MulScalarAndVec", lhs, pcall("mul", pv("alpha"), pv("A")))


def lift_mul_rule() -> Rule:
    """I-LIFTMUL: ``build N (λ mul(α↑, A↑[•0])) → mul(α, A)``."""
    lhs = pbuild(
        n("N"),
        plam(pcall("mul", pv("alpha", 1), pindex(pv("A", 1), pdb(0)))),
    )
    return rewrite("I-LiftMul", lhs, pcall("mul", pv("alpha"), pv("A")))


def gemm_composition_rule() -> Rule:
    """Matrix-level composition (the PyTorch analogue of BLAS I-GEMM):

    ``build N (λ add(mul(α↑, mv(X↑, A↑[•0])), mul(β↑, C↑[•0])))
    → add(mul(α, mm(A, transpose(X))), mul(β, C))``

    Per row, ``α·X·A[i] + β·C[i]`` assembles ``α·A·Xᵀ + β·C``; with
    ``X = transpose(B)`` from a row-major source, I-TRANSPOSETWICE
    collapses the double transpose and yields the paper's gemm-kernel
    solution ``add(mm(mul(α, A), B), mul(β, C))`` modulo mul placement
    (table III).
    """
    lhs = pbuild(
        n("N"),
        plam(
            pcall(
                "add",
                pcall(
                    "mul",
                    pv("alpha", 1),
                    pcall("mv", pv("X", 1), pindex(pv("A", 1), pdb(0))),
                ),
                pcall("mul", pv("beta", 1), pindex(pv("C", 1), pdb(0))),
            )
        ),
    )
    rhs = pcall(
        "add",
        pcall("mul", pv("alpha"), pcall("mm", pv("A"), pcall("transpose", pv("X")))),
        pcall("mul", pv("beta"), pv("C")),
    )
    return rewrite("I-GemmTorch", lhs, rhs)


def full_vec_rule() -> Rule:
    """I-FULLVEC: ``build N (λ c↑) → full(c, N)``."""
    lhs = pbuild(n("N"), plam(pv("c", 1)))

    def apply(egraph: EGraph, match: Match) -> Sequence[Term]:
        size = match.bindings["N"]
        assert isinstance(size, int)
        from ..egraph.pattern import TermBinding

        constant = match.bindings["c"]
        assert isinstance(constant, TermBinding)
        return [Call("full", (constant.term, Const(size)))]

    return dynamic_rule("I-FullVec", lhs, apply)


def pytorch_rules() -> List[Rule]:
    """The full PyTorch idiom rule set."""
    rules: List[Rule] = [
        dot_rule(),
        vec_sum_rule(),
        matvec_rule(),
        matmat_rule(),
        transpose_rule(),
        add_vec_rule(),
        lift_add_rule(),
        mul_scalar_and_vec_rule(),
        lift_mul_rule(),
        gemm_composition_rule(),
        full_vec_rule(),
    ]
    rules.extend(transpose_twice_rules())
    return rules
