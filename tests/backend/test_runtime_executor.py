"""Tests for the library runtimes, executor, and coverage measurement."""

import numpy as np
import pytest

from repro.analysis.coverage import measure_coverage
from repro.backend.executor import (
    TimingResult,
    outputs_match,
    run_solution,
    time_callable,
    time_reference,
    time_solution,
    verify_solution,
)
from repro.backend.library_runtime import blas_runtime, pytorch_runtime
from repro.ir import parse
from repro.kernels import registry


class TestBlasRuntime:
    def setup_method(self):
        self.rt = blas_runtime()
        self.rng = np.random.default_rng(0)

    def test_dot(self):
        a, b_ = self.rng.standard_normal(8), self.rng.standard_normal(8)
        assert self.rt["dot"](a, b_) == pytest.approx(float(np.dot(a, b_)))

    def test_axpy(self):
        a, b_ = self.rng.standard_normal(8), self.rng.standard_normal(8)
        assert np.allclose(self.rt["axpy"](2.0, a, b_), 2.0 * a + b_)

    def test_gemv_and_gemv_t(self):
        a = self.rng.standard_normal((4, 8))
        x, y = self.rng.standard_normal(8), self.rng.standard_normal(4)
        assert np.allclose(self.rt["gemv"](2.0, a, x, 3.0, y), 2 * a @ x + 3 * y)
        z = self.rng.standard_normal(8)
        assert np.allclose(
            self.rt["gemv_t"](2.0, a, y, 3.0, z), 2 * a.T @ y + 3 * z
        )

    def test_gemm_variants(self):
        a = self.rng.standard_normal((4, 5))
        b_ = self.rng.standard_normal((5, 6))
        c = self.rng.standard_normal((4, 6))
        assert np.allclose(
            self.rt["gemm_nn"](1.5, a, b_, 0.5, c), 1.5 * a @ b_ + 0.5 * c
        )
        bt = self.rng.standard_normal((6, 5))
        assert np.allclose(
            self.rt["gemm_nt"](1.0, a, bt, 0.0, np.zeros((4, 6))), a @ bt.T
        )
        at = self.rng.standard_normal((5, 4))
        assert np.allclose(
            self.rt["gemm_tn"](1.0, at, b_, 0.0, np.zeros((4, 6))), at.T @ b_
        )
        assert np.allclose(
            self.rt["gemm_tt"](1.0, at, bt, 0.0, np.zeros((4, 6))), at.T @ bt.T
        )

    def test_transpose_and_memset(self):
        a = self.rng.standard_normal((3, 5))
        assert np.allclose(self.rt["transpose"](a), a.T)
        assert np.allclose(self.rt["memset"](0.0, 4), np.zeros(4))


class TestPytorchRuntime:
    def setup_method(self):
        self.rt = pytorch_runtime()
        self.rng = np.random.default_rng(0)

    def test_mv_mm(self):
        a = self.rng.standard_normal((4, 8))
        x = self.rng.standard_normal(8)
        assert np.allclose(self.rt["mv"](a, x), a @ x)
        b_ = self.rng.standard_normal((8, 3))
        assert np.allclose(self.rt["mm"](a, b_), a @ b_)

    def test_polymorphic_add_mul(self):
        assert self.rt["add"](1.0, 2.0) == 3.0
        v = self.rng.standard_normal(4)
        assert np.allclose(self.rt["add"](v, v), 2 * v)
        assert self.rt["mul"](2.0, 3.0) == 6.0
        assert np.allclose(self.rt["mul"](2.0, v), 2 * v)

    def test_sum_dot_full(self):
        v = self.rng.standard_normal(6)
        assert self.rt["sum"](v) == pytest.approx(float(v.sum()))
        assert self.rt["dot"](v, v) == pytest.approx(float(v @ v))
        assert np.allclose(self.rt["full"](1.5, 3), [1.5, 1.5, 1.5])


class TestExecutor:
    def test_run_solution_with_registry(self):
        term = parse("dot(a, c)")
        inputs = {"a": np.array([1.0, 2.0]), "c": np.array([3.0, 4.0])}
        assert run_solution(term, inputs, blas_runtime()) == pytest.approx(11.0)

    def test_outputs_match_tuples(self):
        assert outputs_match((np.zeros(2), 1.0), (np.zeros(2), 1.0))
        assert not outputs_match((np.zeros(2),), (np.zeros(2), 1.0))
        assert not outputs_match((np.zeros(2), 1.0), (np.zeros(2), 2.0))

    def test_time_callable_respects_min_runs(self):
        result = time_callable(lambda: None, budget_seconds=0.0, min_runs=5)
        assert result.runs >= 5
        assert result.best_seconds <= result.mean_seconds

    def test_time_solution_and_reference(self):
        kernel = registry.get("vsum")
        inputs = kernel.inputs(0)
        sol = time_solution(kernel.term, inputs, budget_seconds=0.02)
        ref = time_reference(kernel, inputs, budget_seconds=0.02)
        assert sol.mean_seconds > 0
        assert ref.mean_seconds > 0

    def test_verify_solution_accepts_correct_term(self):
        kernel = registry.get("vsum")
        assert verify_solution(kernel, kernel.term)

    def test_verify_solution_rejects_wrong_term(self):
        kernel = registry.get("vsum")
        wrong = parse("ifold 64 1 (λ λ xs[•1] + •0)")
        assert not verify_solution(kernel, wrong)

    def test_verify_solution_with_library_calls(self):
        kernel = registry.get("vsum")
        solution = parse("dot(build 64 (λ 1), xs)")
        assert verify_solution(kernel, solution, blas_runtime())


class TestCoverage:
    def test_full_library_solution_has_high_coverage(self):
        kernel = registry.get("gemv")
        inputs = kernel.inputs(0)
        term = parse("gemv(alpha, A, B, beta, C)")
        report = measure_coverage(term, inputs, blas_runtime(), repeats=5)
        # Steady-state (warm library, fastest-half sampling) coverage of
        # a lone gemv call at the scaled-down sizes is a stable ~0.26;
        # interpreted dispatch around the call accounts for the rest.
        assert report.coverage > 0.2
        assert set(report.per_function_seconds) == {"gemv"}

    def test_loop_solution_has_zero_coverage(self):
        kernel = registry.get("vsum")
        inputs = kernel.inputs(0)
        report = measure_coverage(kernel.term, inputs, blas_runtime(), repeats=2)
        assert report.coverage == 0.0
        assert report.per_function_seconds == {}

    def test_breakdown_ordered(self):
        kernel = registry.get("gesummv")
        inputs = kernel.inputs(0)
        term = parse("gemv(alpha, A, x, 1, gemv(beta, B, x, 1, memset(0, 16)))")
        report = measure_coverage(term, inputs, blas_runtime(), repeats=3)
        breakdown = report.breakdown()
        assert "gemv" in breakdown
        values = list(breakdown.values())
        assert values == sorted(values, reverse=True)
