"""The eight custom kernels of table I, plus ``dot`` (a CI-affordable
pinned kernel outside the table).

Sizes are scaled down from HPC-typical dimensions so that the
interpreted "pure C" substrate finishes in benchmark-friendly time;
the e-graph (and hence everything tables II/III report) is independent
of the concrete sizes.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from ..ir import builders as b
from ..ir.shapes import SCALAR, matrix, vector
from .base import Kernel
from .combinators import (
    conv1d,
    constvec,
    dot_ir,
    matmat,
    matvec,
    transpose_ir,
    vadd,
    vscale,
    vsum_ir,
)

__all__ = ["custom_kernels", "N_VEC", "N_MAT", "K_MAT", "M_MAT"]

# Default problem sizes (see module docstring).
N_VEC = 64       # vector length
N_MAT = 16       # matrix rows
K_MAT = 16       # inner dimension
M_MAT = 16       # matrix columns
TAPS = 3         # stencil width


def _sym(name: str) -> Any:
    return b.sym(name)


def kernel_1mm() -> Kernel:
    """One matrix multiplication: ``C = A·B``."""
    n, k, m = N_MAT, K_MAT, M_MAT
    term = matmat(_sym("A"), _sym("B"), n, k, m)
    return Kernel(
        name="1mm",
        suite="custom",
        description="One matrix multiplication",
        term=term,
        symbol_shapes={"A": matrix(n, k), "B": matrix(k, m)},
        make_inputs=lambda rng: {
            "A": rng.standard_normal((n, k)),
            "B": rng.standard_normal((k, m)),
        },
        reference=lambda inp: inp["A"] @ inp["B"],
        reference_loops=_loops_1mm,
        params={"N": n, "K": k, "M": m},
    )


def _loops_1mm(inp: Mapping[str, Any]) -> np.ndarray:
    a, bmat = inp["A"], inp["B"]
    n, k = a.shape
    m = bmat.shape[1]
    out = np.zeros((n, m))
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * bmat[p, j]
            out[i, j] = acc
    return out


def kernel_axpy() -> Kernel:
    """Vector scaling and addition: ``αA + B``."""
    n = N_VEC
    term = vadd(vscale(_sym("alpha"), _sym("A"), n), _sym("B"), n)
    return Kernel(
        name="axpy",
        suite="custom",
        description="Vector scaling and addition",
        term=term,
        symbol_shapes={"alpha": SCALAR, "A": vector(n), "B": vector(n)},
        make_inputs=lambda rng: {
            "alpha": float(rng.standard_normal()),
            "A": rng.standard_normal(n),
            "B": rng.standard_normal(n),
        },
        reference=lambda inp: inp["alpha"] * inp["A"] + inp["B"],
        reference_loops=_loops_axpy,
        params={"N": n},
    )


def _loops_axpy(inp: Mapping[str, Any]) -> np.ndarray:
    alpha, a, bvec = inp["alpha"], inp["A"], inp["B"]
    out = np.zeros(len(a))
    for i in range(len(a)):
        out[i] = alpha * a[i] + bvec[i]
    return out


def kernel_blur1d() -> Kernel:
    """1-D box-blur stencil, window-gather style (3 taps, weight ⅓)."""
    n = N_VEC
    out_len = n - TAPS + 1
    weights = constvec(1.0 / 3.0, TAPS)
    term = conv1d(_sym("x"), weights, out_len, TAPS)
    return Kernel(
        name="blur1d",
        suite="custom",
        description="1D stencil",
        term=term,
        symbol_shapes={"x": vector(n)},
        make_inputs=lambda rng: {"x": rng.standard_normal(n)},
        reference=lambda inp: np.convolve(inp["x"], np.full(TAPS, 1.0 / 3.0), "valid"),
        reference_loops=_loops_blur1d,
        params={"N": n, "taps": TAPS},
    )


def _loops_blur1d(inp: Mapping[str, Any]) -> np.ndarray:
    x = inp["x"]
    out = np.zeros(len(x) - TAPS + 1)
    for i in range(len(out)):
        acc = 0.0
        for t in range(TAPS):
            acc += x[i + t] / 3.0
        out[i] = acc
    return out


def kernel_dot() -> Kernel:
    """Dot product of two vectors: ``Σ A[i]·B[i]``.

    Not a table I row — it joins the suite as a CI-affordable pinned
    kernel for the perf-regression gate (its saturation is among the
    cheapest that still exercises the marquee ``ifold → dot`` idiom
    directly, rather than through gemv's nested derivation).
    """
    n = N_VEC
    term = dot_ir(_sym("A"), _sym("B"), n)
    return Kernel(
        name="dot",
        suite="custom",
        description="Vector dot product",
        term=term,
        symbol_shapes={"A": vector(n), "B": vector(n)},
        make_inputs=lambda rng: {
            "A": rng.standard_normal(n),
            "B": rng.standard_normal(n),
        },
        reference=lambda inp: float(np.dot(inp["A"], inp["B"])),
        reference_loops=_loops_dot,
        params={"N": n},
    )


def _loops_dot(inp: Mapping[str, Any]) -> float:
    a, bvec = inp["A"], inp["B"]
    acc = 0.0
    for i in range(len(a)):
        acc += a[i] * bvec[i]
    return acc


def kernel_gemv() -> Kernel:
    """Generalized matrix–vector product: ``αAB + βC``."""
    n, m = N_MAT, M_MAT
    term = vadd(
        vscale(_sym("alpha"), matvec(_sym("A"), _sym("B"), n, m), n),
        vscale(_sym("beta"), _sym("C"), n),
        n,
    )
    return Kernel(
        name="gemv",
        suite="custom",
        description="Generalized matrix-vector product",
        term=term,
        symbol_shapes={
            "alpha": SCALAR,
            "beta": SCALAR,
            "A": matrix(n, m),
            "B": vector(m),
            "C": vector(n),
        },
        make_inputs=lambda rng: {
            "alpha": float(rng.standard_normal()),
            "beta": float(rng.standard_normal()),
            "A": rng.standard_normal((n, m)),
            "B": rng.standard_normal(m),
            "C": rng.standard_normal(n),
        },
        reference=lambda inp: inp["alpha"] * (inp["A"] @ inp["B"])
        + inp["beta"] * inp["C"],
        reference_loops=_loops_gemv,
        params={"N": n, "M": m},
    )


def _loops_gemv(inp: Mapping[str, Any]) -> np.ndarray:
    alpha, beta = inp["alpha"], inp["beta"]
    a, bvec, c = inp["A"], inp["B"], inp["C"]
    n, m = a.shape
    out = np.zeros(n)
    for i in range(n):
        acc = 0.0
        for j in range(m):
            acc += a[i, j] * bvec[j]
        out[i] = alpha * acc + beta * c[i]
    return out


def kernel_memset() -> Kernel:
    """Zero-vector creation."""
    n = N_VEC
    term = b.build(n, b.lam(0))
    return Kernel(
        name="memset",
        suite="custom",
        description="Zero vector creation",
        term=term,
        symbol_shapes={},
        make_inputs=lambda rng: {},
        reference=lambda inp: np.zeros(n),
        reference_loops=lambda inp: _loops_memset(n),
        params={"N": n},
    )


def _loops_memset(n: int) -> np.ndarray:
    out = np.empty(n)
    for i in range(n):
        out[i] = 0.0
    return out


def kernel_slim_2mm() -> Kernel:
    """Two multiplications, slim: ``(A·B)·x`` (matrix–matrix then
    matrix–vector)."""
    n, k, m = N_MAT, K_MAT, M_MAT
    term = matvec(matmat(_sym("A"), _sym("B"), n, k, m), _sym("x"), n, m)
    return Kernel(
        name="slim-2mm",
        suite="custom",
        description="Two matrix multiplications (slim)",
        term=term,
        symbol_shapes={"A": matrix(n, k), "B": matrix(k, m), "x": vector(m)},
        make_inputs=lambda rng: {
            "A": rng.standard_normal((n, k)),
            "B": rng.standard_normal((k, m)),
            "x": rng.standard_normal(m),
        },
        reference=lambda inp: (inp["A"] @ inp["B"]) @ inp["x"],
        reference_loops=_loops_slim_2mm,
        params={"N": n, "K": k, "M": m},
    )


def _loops_slim_2mm(inp: Mapping[str, Any]) -> np.ndarray:
    tmp = _loops_1mm(inp)
    x = inp["x"]
    n, m = tmp.shape
    out = np.zeros(n)
    for i in range(n):
        acc = 0.0
        for j in range(m):
            acc += tmp[i, j] * x[j]
        out[i] = acc
    return out


def kernel_stencil2d() -> Kernel:
    """2-D stencil: a 3-tap horizontal blur over every matrix row,
    window-gather style."""
    rows, cols = N_MAT, N_VEC
    out_len = cols - TAPS + 1
    weights = constvec(1.0 / 3.0, TAPS)
    term = b.build(
        rows,
        b.lam(conv1d(b.up(_sym("x"))[b.v(0)], b.up(weights), out_len, TAPS)),
    )
    return Kernel(
        name="stencil2d",
        suite="custom",
        description="2D stencil",
        term=term,
        symbol_shapes={"x": matrix(rows, cols)},
        make_inputs=lambda rng: {"x": rng.standard_normal((rows, cols))},
        reference=lambda inp: np.stack(
            [np.convolve(row, np.full(TAPS, 1.0 / 3.0), "valid") for row in inp["x"]]
        ),
        reference_loops=_loops_stencil2d,
        params={"rows": rows, "cols": cols, "taps": TAPS},
    )


def _loops_stencil2d(inp: Mapping[str, Any]) -> np.ndarray:
    x = inp["x"]
    rows, cols = x.shape
    out = np.zeros((rows, cols - TAPS + 1))
    for i in range(rows):
        for j in range(cols - TAPS + 1):
            acc = 0.0
            for t in range(TAPS):
                acc += x[i, j + t] / 3.0
            out[i, j] = acc
    return out


def kernel_vsum() -> Kernel:
    """Vector reduction with sum."""
    n = N_VEC
    term = vsum_ir(_sym("xs"), n)
    return Kernel(
        name="vsum",
        suite="custom",
        description="Vector reduction with sum",
        term=term,
        symbol_shapes={"xs": vector(n)},
        make_inputs=lambda rng: {"xs": rng.standard_normal(n)},
        reference=lambda inp: float(inp["xs"].sum()),
        reference_loops=_loops_vsum,
        params={"N": n},
    )


def _loops_vsum(inp: Mapping[str, Any]) -> float:
    acc = 0.0
    for value in inp["xs"]:
        acc += value
    return acc


def custom_kernels() -> list:
    """The eight custom table I kernels plus ``dot`` (CI pinned set)."""
    return [
        kernel_1mm(),
        kernel_axpy(),
        kernel_blur1d(),
        kernel_dot(),
        kernel_gemv(),
        kernel_memset(),
        kernel_slim_2mm(),
        kernel_stencil2d(),
        kernel_vsum(),
    ]
