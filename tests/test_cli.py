"""Tests for the command-line evaluation driver (repro.cli)."""

from pathlib import Path

import pytest

from repro.cli import main


class TestCli:
    def test_unknown_kernel_is_an_error(self, capsys):
        assert main(["not-a-kernel"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_small_run_writes_artifacts(self, tmp_path, capsys):
        code = main([
            "memset", "-t", "blas",
            "--steps", "3", "--nodes", "2000",
            "--out", str(tmp_path), "-q",
        ])
        assert code == 0
        overview = (tmp_path / "blas-overview.csv").read_text()
        assert overview.splitlines()[0] == "name,externs,steps,nodes"
        assert overview.splitlines()[1].startswith("memset,")
        assert (tmp_path / "blas-table.txt").exists()

    def test_run_flag_times_solutions(self, tmp_path):
        code = main([
            "memset", "-t", "blas",
            "--steps", "3", "--nodes", "2000",
            "--run", "--budget", "0.02",
            "--out", str(tmp_path), "-q",
        ])
        assert code == 0
        speedups = (tmp_path / "blas-speedups.csv").read_text()
        assert speedups.splitlines()[1].startswith("memset,")

    def test_progress_lines_printed(self, capsys):
        main(["memset", "-t", "blas", "--steps", "2", "--nodes", "1000"])
        out = capsys.readouterr().out
        assert "[blas] memset" in out

    def test_record_then_prune_round_trip(self, tmp_path, capsys):
        """The telemetry feedback loop: --rule-profile records a run,
        --prune-from-profile consumes the recording."""
        profile = tmp_path / "profile.json"
        assert main([
            "memset", "-t", "blas", "--steps", "3", "--nodes", "2000",
            "--rule-profile", str(profile), "-q",
        ]) == 0
        assert profile.exists()
        assert main([
            "memset", "-t", "blas", "--steps", "3", "--nodes", "2000",
            "--prune-from-profile", str(profile), "-q",
        ]) == 0

    def test_prune_from_missing_profile_is_an_error(self, tmp_path, capsys):
        code = main([
            "memset", "-t", "blas", "--steps", "2", "--nodes", "1000",
            "--prune-from-profile", str(tmp_path / "nope.json"), "-q",
        ])
        assert code == 1
        assert "ProfileError" in capsys.readouterr().err


class TestTopConsole:
    """``repro top``: the render function with canned payloads, and
    one live ``--once`` frame against a real daemon."""

    HEALTH = {
        "uptime_seconds": 10.0, "version": "repro-serve/1",
        "package_version": "1.0", "queue_depth": 2,
        "jobs": {"queued": 2, "running": 1, "done": 4, "failed": 1},
        "pool": {"workers": 2, "warm": True},
        "cache": {"hits": 3, "misses": 1},
        "observability": {"events_emitted": 42},
    }
    SNAPSHOT = {
        "schema": "repro-metrics/1",
        "families": {"server": {
            "jobs_submitted_total": {"kind": "counter", "samples": [
                {"labels": {"tenant": "acme"}, "value": 5.0}]},
            "jobs_completed_total": {"kind": "counter", "samples": [
                {"labels": {"tenant": "acme", "status": "done"},
                 "value": 4.0},
                {"labels": {"tenant": "acme", "status": "failed"},
                 "value": 1.0}]},
            "job_seconds": {"kind": "histogram",
                            "buckets": [1.0, 2.0],
                            "samples": [{"labels": {"tenant": "acme"},
                                         "value": {"counts": [4, 0, 0],
                                                   "count": 4,
                                                   "sum": 2.0}}]},
        }},
    }

    def test_render_top_frame(self):
        from repro.cli import _render_top

        frame = _render_top(
            "http://x:1", self.HEALTH, self.SNAPSHOT,
            [{"trace_id": "t1", "tenant": "acme", "kernel": "dot",
              "target": "blas", "outcome": "done",
              "total_seconds": 0.5, "stop_reason": "saturated"}], 10)
        assert "queue depth 2" in frame
        assert "2 queued, 1 running, 4 done, 1 failed" in frame
        assert "2 workers (warm)" in frame
        assert "hit rate 75.0%" in frame
        assert "events emitted: 42" in frame
        assert "acme" in frame and "0.50" in frame  # rps = 5 / 10s
        assert "t1" in frame and "dot/blas" in frame
        assert "saturated" in frame

    def test_render_top_handles_missing_debug_access(self):
        from repro.cli import _render_top

        frame = _render_top("http://x:1", self.HEALTH, self.SNAPSHOT,
                            None, 10)
        assert "debug endpoint unavailable" in frame

    def test_render_top_empty_daemon(self):
        from repro.cli import _render_top

        frame = _render_top("http://x:1",
                            {"uptime_seconds": 0.0},
                            {"families": {}}, [], 10)
        assert "no jobs submitted yet" in frame

    def test_top_once_against_live_daemon(self, capsys):
        from repro.api.limits import Limits
        from repro.server import ServeConfig
        from repro.server.testing import serving

        config = ServeConfig(
            host="127.0.0.1", port=0, pool_workers=0, queue_workers=1,
            limits=Limits(step_limit=2, node_limit=1000, time_limit=30.0),
        )
        with serving(config) as server:
            assert main(["top", server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert f"repro top — {server.url}" in out
        assert "queue depth" in out
        assert "recent requests" in out

    def test_top_unreachable_daemon_is_an_error(self, capsys):
        assert main(["top", "http://127.0.0.1:9", "--once"]) == 1
        assert "error:" in capsys.readouterr().err
