"""build/ifold implementations of the mathematical operators (§VI).

Kernels are expressed by composing these combinators, exactly as the
paper describes::

    vadd(A, B)    = build N (λ A↑[•0] + B↑[•0])
    vscale(α, A)  = build N (λ α↑ * A↑[•0])
    matvec(A, B)  = build N (λ dot(A↑[•0], B↑))
    dot(A, B)     = ifold N 0 (λ λ A↑↑[•1] * B↑↑[•1] + •0)

plus matrix transpose, matrix-matrix product, and windowed stencils.
Every combinator *inlines* its expansion — the resulting term contains
only core IR operators, never named library calls.  Each takes its
operand terms at the caller's binder depth and shifts them as its own
lambdas require.
"""

from __future__ import annotations

from ..ir.builders import build, const, ifold, lam, lam2, up, v
from ..ir.terms import Term

__all__ = [
    "vadd",
    "vscale",
    "dot_ir",
    "vsum_ir",
    "matvec",
    "transpose_ir",
    "matmat",
    "constvec",
    "window1d",
    "conv1d",
]


def vadd(a: Term, b: Term, n: int) -> Term:
    """Elementwise vector addition ``build n (λ a↑[•0] + b↑[•0])``."""
    return build(n, lam(up(a)[v(0)] + up(b)[v(0)]))


def vscale(alpha: Term, a: Term, n: int) -> Term:
    """Vector scaling ``build n (λ α↑ * a↑[•0])``."""
    return build(n, lam(up(alpha) * up(a)[v(0)]))


def dot_ir(a: Term, b: Term, n: int) -> Term:
    """Dot product ``ifold n 0 (λ λ a↑↑[•1] * b↑↑[•1] + •0)``."""
    return ifold(n, 0, lam2(up(a, 2)[v(1)] * up(b, 2)[v(1)] + v(0)))


def vsum_ir(a: Term, n: int) -> Term:
    """Vector sum ``ifold n 0 (λ λ a↑↑[•1] + •0)``."""
    return ifold(n, 0, lam2(up(a, 2)[v(1)] + v(0)))


def matvec(a: Term, b: Term, rows: int, cols: int) -> Term:
    """Matrix–vector product ``build rows (λ dot(a↑[•0], b↑))``."""
    return build(rows, lam(dot_ir(up(a)[v(0)], up(b), cols)))


def transpose_ir(a: Term, rows: int, cols: int) -> Term:
    """Transpose of a ``rows×cols`` matrix:
    ``build cols (λ build rows (λ a↑↑[•0][•1]))``."""
    return build(cols, lam(build(rows, lam(up(a, 2)[v(0)][v(1)]))))


def matmat(a: Term, b: Term, n: int, k: int, m: int) -> Term:
    """Matrix product ``A·B`` of ``n×k`` by ``k×m``:
    row ``i`` is ``matvec(transpose(B), A[i])``."""
    return build(
        n,
        lam(matvec(transpose_ir(up(b), k, m), up(a)[v(0)], m, k)),
    )


def constvec(value: float, n: int) -> Term:
    """Constant vector ``build n (λ c)``."""
    return build(n, lam(const(value)))


def window1d(x: Term, start: Term, taps: int) -> Term:
    """The window ``build taps (λ x↑[start↑ + •0])`` of ``x`` beginning
    at index ``start`` — the gather step of a windowed convolution."""
    return build(taps, lam(up(x)[up(start) + v(0)]))


def conv1d(x: Term, weights: Term, out_len: int, taps: int) -> Term:
    """Valid 1-D convolution written window-gather style:
    ``build out_len (λ dot(weights↑, window(x↑, •0)))``.

    Expressing stencils this way (gather a window, reduce it against
    the weights) is what lets equality saturation discover im2col-style
    ``gemv``/``mv`` solutions for them (§VI-B/E).
    """
    return build(
        out_len,
        lam(dot_ir(up(weights), window1d(up(x), v(0), taps), taps)),
    )
