"""Parallel e-matching and apply planning over a shared e-graph.

Within one saturation step, every rule's search is an independent,
read-only query of the e-graph — no rule's matches depend on another
rule having searched first.  That makes the search phase (the dominant
cost of saturation on every tier-1 kernel; see
``benchmarks/out/scheduler_ablation.csv``) embarrassingly parallel,
the same way :meth:`repro.api.Session.optimize_many` already
parallelizes across *runs*.

Worker protocol: one fork-based process pool is created per run —
workers inherit the (closure-carrying) rule list by copy-on-write
once, at pool creation.  Each
step the parent freezes the e-graph into a columnar
:class:`~repro.egraph.store.FlatStore` and publishes it through a
single ``multiprocessing.shared_memory`` segment (only when the graph
actually changed); tasks carry a ``(segment name, version)`` token and
workers *attach* to the arrays — per-step snapshot transfer is O(1) in
the number of live Python objects, instead of re-forking or pickling
the object graph every step.  Superseded segments are unlinked by the
parent; workers' existing mappings survive the unlink (POSIX) and are
dropped when the next token arrives.

**Apply planning**: rules whose appliers are pure functions of the
match (``Rule.snapshot_pure`` — pattern rules that never extract, plus
beta reduction) can have their result terms computed in workers while
the parent is idle-waiting anyway.  :meth:`ParallelSearch.plan_apply`
partitions the step's admitted pure matches per rule, computes each
partition's terms concurrently, and hands the parent a ``match index →
terms`` plan; the parent then commits *every* match — planned terms
and impure appliers alike — in canonical admission order.  Unions
therefore happen in exactly the serial order, which is what keeps
parallel runs byte-identical.

Determinism guarantee: workers only *find* matches and *precompute*
pure result terms.  Scheduling decisions, dedup against already-
applied matches, match admission, and every e-graph mutation happen in
the parent, in canonical rule order, exactly as the serial engine does
— and both a rule's search output and a pure applier's output are pure
functions of their inputs.  Solutions extracted from a parallel run
are therefore byte-identical to a serial run's (the nightly CI
workflow diffs them against the canonical artifacts).

Serial fallback: ``search_workers <= 1``, platforms without ``fork``
(Windows, macOS spawn-default sandboxes), pools that cannot be
constructed (fd limits), or a pool that breaks mid-step
(``BrokenProcessPool``, e.g. an OOM-killed worker) all degrade to the
in-process search path; a broken pool additionally pins the rest of
the run serial — search *and* apply — so a flaky environment does not
re-fork every step.

Select via ``Limits(search_workers=N, apply_workers=N)``,
``REPRO_SEARCH_WORKERS`` / ``REPRO_APPLY_WORKERS``, or the CLI's
``-w/--search-workers`` and ``--apply-workers``.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..egraph.egraph import EGraph
from ..egraph.rewrite import Match, Rule
from ..ir.terms import Term
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.trace import CAT_POOL, CAT_RULE, NULL_TRACER, Tracer
from .ematch import search_rule

__all__ = [
    "SearchTask",
    "SearchOutcome",
    "ParallelSearch",
    "fork_available",
    "resolve_workers",
]

#: One planned rule search: (rule index, root restriction or None).
SearchTask = Tuple[int, Optional[FrozenSet[int]]]

#: One executed rule search: (per-rule search seconds, matches found).
SearchOutcome = Tuple[float, List[Match]]

#: One apply-planning entry: (match index, rule index, match).
ApplyEntry = Tuple[int, int, Match]

# Worker-side state (the rule list), inherited through fork.  Set in
# the parent immediately before the pool is created; only ever read in
# workers.  Workers never inherit the e-graph itself — they attach to
# published snapshots.
_WORKER_STATE: Optional[Sequence[Rule]] = None

# Worker-side snapshot cache: (token, attached store, snapshot view).
# One entry — a fresh token supersedes (and unmaps) the previous one.
_WORKER_SNAPSHOT: Optional[Tuple[tuple, object, object]] = None


def fork_available() -> bool:
    """Whether fork-based worker pools are safe to use here.

    macOS *offers* the fork start method but forking a threaded /
    Objective-C-runtime parent there is notoriously crash-prone (which
    is why spawn became its default); treat it as fork-less and take
    the serial fallback, as documented.
    """
    import multiprocessing

    if sys.platform == "darwin":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_egraph(token: tuple):
    """The e-graph this worker should search: the attached snapshot
    named by ``token``."""
    global _WORKER_SNAPSHOT
    if _WORKER_SNAPSHOT is not None and _WORKER_SNAPSHOT[0] == token:
        return _WORKER_SNAPSHOT[2]
    from ..egraph.store import FlatStore, SnapshotEGraph

    if _WORKER_SNAPSHOT is not None:
        _token, old_store, old_snapshot = _WORKER_SNAPSHOT
        _WORKER_SNAPSHOT = None
        old_snapshot.dispose()
        del old_snapshot
        old_store.detach()
    store = FlatStore.attach(token[0])
    snapshot = SnapshotEGraph(store)
    _WORKER_SNAPSHOT = (token, store, snapshot)
    return snapshot


def _search_chunk(
    token: tuple,
    chunk: List[SearchTask],
    deadline: Optional[float],
    trace: bool = False,
) -> Tuple[List[Tuple[int, float, List[Match]]], List[Dict[str, Any]]]:
    """Worker entry point: run a batch of rule searches against the
    snapshot and return ``((rule_index, seconds, matches) triples,
    span events)``.  ``deadline`` is a ``perf_counter`` value —
    comparable across fork because ``CLOCK_MONOTONIC`` is system-wide,
    and for the same reason the span events' absolute timestamps merge
    directly into the parent's trace (:meth:`Tracer.add_remote`), each
    on this worker's own pid lane."""
    assert _WORKER_STATE is not None, "search worker forked without state"
    egraph = _worker_egraph(token)
    rules = _WORKER_STATE
    pid = os.getpid()
    results = []
    events: List[Dict[str, Any]] = []
    for rule_index, restrict in chunk:
        started = time.perf_counter()
        found = search_rule(egraph, rules[rule_index], restrict, deadline)
        seconds = time.perf_counter() - started
        results.append((rule_index, seconds, found))
        if trace:
            events.append({
                "name": f"search:{rules[rule_index].name}",
                "cat": CAT_RULE, "ts": started, "dur": seconds,
                "pid": pid, "args": {"matches": len(found)},
            })
    return results, events


def _apply_chunk(
    entries: List[ApplyEntry],
    deadline: Optional[float],
    trace: bool = False,
) -> Tuple[float, List[Tuple[int, List[Term]]], List[Dict[str, Any]]]:
    """Worker entry point for apply planning: compute the result terms
    of pure appliers.  Pure appliers never read the e-graph (enforced
    by ``Rule.snapshot_pure``), so no snapshot is needed — the rule
    list arrived through fork.  Entries past the deadline are skipped;
    the parent computes them inline with identical results.  Returns
    ``(seconds, planned terms, span events)``."""
    assert _WORKER_STATE is not None, "apply worker forked without state"
    rules = _WORKER_STATE
    started = time.perf_counter()
    planned: List[Tuple[int, List[Term]]] = []
    for match_index, rule_index, match in entries:
        if deadline is not None and time.perf_counter() > deadline:
            break
        terms = list(rules[rule_index].applier(None, match))
        planned.append((match_index, terms))
    seconds = time.perf_counter() - started
    events: List[Dict[str, Any]] = []
    if trace:
        events.append({
            "name": f"plan_apply:{len(entries)} matches",
            "cat": CAT_POOL, "ts": started, "dur": seconds,
            "pid": os.getpid(), "args": {"planned": len(planned)},
        })
    return seconds, planned, events


def _release_segment(shm) -> None:
    """Unlink a published segment, then drop this process's mapping.

    Unlink comes first: a ``close()`` that fails because buffer views
    are still alive (``BufferError``) must not leave the name behind in
    ``/dev/shm`` — the mapping itself is reclaimed at process exit."""
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        pass


def _partition(
    tasks: Sequence, weights: Sequence[float], buckets: int
) -> List[List]:
    """Longest-processing-time assignment of tasks to ``buckets``.

    ``weights[i]`` estimates the cost of task ``i`` (for rule searches,
    the rule's cumulative ``search_seconds`` telemetry from earlier
    steps), so one historically expensive rule does not serialize a
    whole worker behind a pile of cheap ones.  Never-searched rules
    weigh a small constant, which spreads them round-robin."""
    loads = [0.0] * buckets
    chunks: List[List] = [[] for _ in range(buckets)]
    order = sorted(
        range(len(tasks)), key=lambda i: weights[i], reverse=True
    )
    for index in order:
        bucket = loads.index(min(loads))
        chunks[bucket].append(tasks[index])
        loads[bucket] += weights[index]
    return [chunk for chunk in chunks if chunk]


class ParallelSearch:
    """Per-run manager for the parallel search and apply phases.

    One instance lives for the duration of a :meth:`Runner.run`; each
    step calls :meth:`run_tasks` with that step's planned searches and
    :meth:`plan_apply` with its admitted matches.  Call :meth:`close`
    when the run ends to shut the pool down and unlink the last
    published snapshot segment.
    """

    def __init__(
        self,
        egraph: EGraph,
        rules: Sequence[Rule],
        workers: int,
        apply_workers: int = 1,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.egraph = egraph
        self.rules = rules
        self.workers = max(1, workers)
        self.apply_workers = max(1, apply_workers)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Set once a pool breaks; pins the rest of the run serial.
        self.broken = False
        #: Steps whose search phase actually ran on the pool.
        self.parallel_steps = 0
        #: Steps whose apply phase consumed a worker-computed plan.
        self.parallel_apply_steps = 0
        #: Raw size of the last published snapshot's arrays (bytes).
        self.snapshot_bytes = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_attempted = False
        self._shm = None
        self._published_version: Optional[int] = None
        self._rule_index = {id(rule): i for i, rule in enumerate(rules)}

    @property
    def active(self) -> bool:
        """Whether the next search phase will try the process pool."""
        return self.workers > 1 and not self.broken and fork_available()

    @property
    def apply_active(self) -> bool:
        """Whether apply planning will try the process pool."""
        return (
            self.apply_workers > 1
            and not self.broken
            and fork_available()
        )

    def close(self) -> None:
        """Shut down the pool and unlink the published snapshot."""
        global _WORKER_STATE
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            _WORKER_STATE = None
        if self._shm is not None:
            _release_segment(self._shm)
            self._shm = None

    # ------------------------------------------------------------------
    # Search phase
    # ------------------------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[SearchTask],
        weights: Sequence[float],
        deadline: Optional[float],
    ) -> Dict[int, SearchOutcome]:
        """Execute the step's planned searches, parallel when possible.

        Returns ``rule_index → (seconds, matches)`` for every task.
        Tasks a broken pool failed to deliver are re-searched serially
        in the parent, so the result is always complete.
        """
        if not self.active or len(tasks) < 2:
            return self._run_serial(tasks, deadline)
        outcomes = self._run_pool_shared(tasks, weights, deadline)
        missing = [task for task in tasks if task[0] not in outcomes]
        if missing:
            outcomes.update(self._run_serial(missing, deadline))
        return outcomes

    def _run_serial(
        self, tasks: Sequence[SearchTask], deadline: Optional[float]
    ) -> Dict[int, SearchOutcome]:
        outcomes: Dict[int, SearchOutcome] = {}
        trace = self.tracer.enabled
        for rule_index, restrict in tasks:
            started = time.perf_counter()
            found = search_rule(
                self.egraph, self.rules[rule_index], restrict, deadline
            )
            seconds = time.perf_counter() - started
            outcomes[rule_index] = (seconds, found)
            if trace:
                # The serial path times rules anyway; record the span
                # after the fact instead of wrapping the hot loop.
                self.tracer.add_complete(
                    f"search:{self.rules[rule_index].name}", CAT_RULE,
                    started, seconds, matches=len(found),
                )
        return outcomes

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The persistent fork pool, created on first use (attempted at
        most once per run; a failed construction pins the run serial).
        Workers inherit the rule list through fork at creation."""
        global _WORKER_STATE
        if self._pool is not None:
            return self._pool
        if self._pool_attempted:
            return None
        self._pool_attempted = True
        import multiprocessing

        # The pool forks its workers lazily, at first submit — so the
        # state must stay published for the pool's whole lifetime (it
        # is cleared in close()).  Workers created by any later submit
        # inherit the same rule list.
        _WORKER_STATE = self.rules
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=max(self.workers, self.apply_workers),
                mp_context=multiprocessing.get_context("fork"),
            )
        except (OSError, BrokenProcessPool):
            self.broken = True
            self._pool = None
            _WORKER_STATE = None
            self.metrics.inc(
                "pool", "broken_fallbacks_total",
                help="pool failures that pinned the run serial",
                site="create",
            )
        return self._pool

    def _publish(self) -> Optional[tuple]:
        """Publish the current e-graph as a shared snapshot; returns
        the worker attach token ``(segment name, version)``.  A no-op
        (returning the existing token) when the graph has not changed
        since the last publish."""
        version = self.egraph.version
        if self._published_version == version and self._shm is not None:
            return (self._shm.name, version)
        publish_started = time.perf_counter()
        store = self.egraph.freeze()
        shm = store.publish()
        self.snapshot_bytes = store.nbytes
        if self.tracer.enabled:
            self.tracer.add_complete(
                "publish_snapshot", CAT_POOL, publish_started,
                time.perf_counter() - publish_started,
                bytes=store.nbytes, version=version,
            )
        if self.metrics.enabled:
            self.metrics.inc("pool", "snapshots_published_total",
                             help="shared-memory snapshots published")
            self.metrics.set_max(
                "pool", "snapshot_bytes", store.nbytes,
                help="largest published snapshot (bytes)",
            )
        previous, self._shm = self._shm, shm
        self._published_version = version
        if previous is not None:
            # Workers' existing mappings survive the unlink; the next
            # token they receive points at the new segment.
            _release_segment(previous)
        return (shm.name, version)

    def _run_pool_shared(
        self,
        tasks: Sequence[SearchTask],
        weights: Sequence[float],
        deadline: Optional[float],
    ) -> Dict[int, SearchOutcome]:
        """Persistent pool + shared snapshot."""
        pool = self._ensure_pool()
        if pool is None:
            return {}
        try:
            token = self._publish()
        except OSError:
            # Shared memory unavailable (e.g. /dev/shm exhausted).
            self.broken = True
            return {}
        chunks = _partition(tasks, weights, min(self.workers, len(tasks)))
        outcomes: Dict[int, SearchOutcome] = {}
        trace = self.tracer.enabled
        try:
            futures = [
                pool.submit(_search_chunk, token, chunk, deadline, trace)
                for chunk in chunks
            ]
            for future in futures:
                try:
                    triples, events = future.result()
                    for rule_index, seconds, found in triples:
                        outcomes[rule_index] = (seconds, found)
                    if events:
                        self.tracer.add_remote(events)
                except (OSError, BrokenProcessPool):
                    # A worker died; its chunk reruns serially in
                    # run_tasks.  Pin the rest of the run serial.
                    self.broken = True
        except (OSError, BrokenProcessPool):
            self.broken = True
        if not self.broken:
            self.parallel_steps += 1
        if self.metrics.enabled:
            self.metrics.inc("pool", "search_tasks_total", len(outcomes),
                             help="rule searches delivered by the pool")
            if self.broken:
                self.metrics.inc(
                    "pool", "broken_fallbacks_total",
                    help="pool failures that pinned the run serial",
                    site="search",
                )
        return outcomes

    # ------------------------------------------------------------------
    # Apply phase
    # ------------------------------------------------------------------

    def plan_apply(
        self,
        matches: Sequence[Tuple[object, Rule, Match]],
        deadline: Optional[float],
    ) -> Tuple[Dict[int, List[Term]], float]:
        """Precompute result terms for this step's pure admitted
        matches on the worker pool.

        Returns ``(match index → terms, worker cpu seconds)``.  The
        plan may be partial (deadline, broken pool) or empty (planning
        not active, too few pure matches); the caller computes missing
        entries inline, with identical results, and commits everything
        in canonical order.
        """
        if not self.apply_active:
            return {}, 0.0
        entries: List[ApplyEntry] = []
        for index, (_stats, rule, match) in enumerate(matches):
            if not rule.snapshot_pure:
                continue
            rule_index = self._rule_index.get(id(rule))
            if rule_index is not None:
                entries.append((index, rule_index, match))
        if len(entries) < 2:
            return {}, 0.0
        pool = self._ensure_pool()
        if pool is None:
            return {}, 0.0
        # Partition per rule so one chunk reuses one applier's closures.
        groups: Dict[int, List[ApplyEntry]] = {}
        for entry in entries:
            groups.setdefault(entry[1], []).append(entry)
        group_list = list(groups.values())
        chunks = _partition(
            group_list,
            [float(len(group)) for group in group_list],
            min(self.apply_workers, len(group_list)),
        )
        planned: Dict[int, List[Term]] = {}
        cpu = 0.0
        delivered = False
        trace = self.tracer.enabled
        try:
            futures = [
                pool.submit(
                    _apply_chunk,
                    [entry for group in chunk for entry in group],
                    deadline,
                    trace,
                )
                for chunk in chunks
            ]
            for future in futures:
                try:
                    seconds, results, events = future.result()
                    cpu += seconds
                    for match_index, terms in results:
                        planned[match_index] = terms
                    if events:
                        self.tracer.add_remote(events)
                    delivered = True
                except (OSError, BrokenProcessPool):
                    self.broken = True
        except (OSError, BrokenProcessPool):
            self.broken = True
        if delivered and not self.broken:
            self.parallel_apply_steps += 1
        if self.metrics.enabled:
            self.metrics.inc("pool", "apply_planned_total", len(planned),
                             help="pure matches planned by the pool")
            if self.broken:
                self.metrics.inc(
                    "pool", "broken_fallbacks_total",
                    help="pool failures that pinned the run serial",
                    site="apply",
                )
        return planned, cpu


def resolve_workers(requested: int) -> int:
    """Effective worker count for a requested ``search_workers`` or
    ``apply_workers`` knob.

    ``1`` means serial.  Requests above the machine's CPU count are
    honored as given (useful for determinism testing), but platforms
    without fork always resolve to serial."""
    if requested <= 1 or not fork_available():
        return 1
    return requested
