"""Tests for request/report types and their JSON round-trips."""

import json

import pytest

from repro.api import (
    Limits,
    OptimizationReport,
    OptimizationRequest,
    report_cache_key,
    shapes_to_spec,
    spec_to_shapes,
)
from repro.ir.shapes import Array, Fn, Scalar, vector
from repro.ir.terms import Symbol


class TestShapeSpecs:
    def test_round_trip(self):
        shapes = {"xs": vector(8), "A": Array((4, 8)), "alpha": Scalar()}
        spec = shapes_to_spec(shapes)
        assert spec == {"A": [4, 8], "alpha": "scalar", "xs": [8]}
        assert spec_to_shapes(spec) == shapes

    def test_none_passthrough(self):
        assert shapes_to_spec(None) is None
        assert spec_to_shapes(None) is None

    def test_exotic_shapes_rejected(self):
        with pytest.raises(TypeError):
            shapes_to_spec({"f": Fn(Scalar(), Scalar())})


class TestOptimizationRequest:
    def test_kernel_request_round_trip(self):
        request = OptimizationRequest(kernel="gemv", target="blas", step_limit=5)
        clone = OptimizationRequest.from_json(request.to_json())
        assert clone == request

    def test_term_request_round_trip(self):
        request = OptimizationRequest(
            target="blas",
            term="build 8 (λ xs[•0])",
            symbol_shapes={"xs": [8]},
            name="copy8",
        )
        assert OptimizationRequest.from_json(request.to_json()) == request
        assert request.display_name == "copy8"

    def test_exactly_one_of_kernel_or_term(self):
        with pytest.raises(ValueError):
            OptimizationRequest(target="blas")
        with pytest.raises(ValueError):
            OptimizationRequest(target="blas", kernel="gemv", term="xs")

    def test_json_is_plain_data(self):
        data = json.loads(OptimizationRequest(kernel="gemv", target="blas").to_json())
        assert data == {"kernel": "gemv", "target": "blas"}


class TestOptimizationReport:
    def _report(self, **overrides) -> OptimizationReport:
        base = dict(
            kernel="gemv",
            target="blas",
            limits=Limits().to_dict(),
            solution="gemv(alpha, A, B, beta, C)",
            solution_summary="1 × gemv",
            library_calls={"gemv": 1},
            best_cost=123.5,
            steps=4,
            enodes=2345,
            stop_reason="saturated",
            seconds=1.25,
        )
        base.update(overrides)
        return OptimizationReport(**base)

    def test_json_round_trip(self):
        report = self._report()
        clone = OptimizationReport.from_json(report.to_json())
        assert clone == report

    def test_infinite_cost_round_trips(self):
        report = self._report(best_cost=float("inf"), solution=None,
                              solution_summary="(no library calls)")
        text = report.to_json()
        assert "Infinity" not in text  # strict JSON stays strict
        assert OptimizationReport.from_json(text).best_cost == float("inf")

    def test_from_result_and_best_term(self):
        from repro.api import Session

        session = Session(Limits(step_limit=2, node_limit=500))
        result = session.optimize("memset", "blas")
        report = OptimizationReport.from_result(result, Limits(2, 500, 120.0))
        assert report.kernel == "memset"
        assert report.library_calls == result.library_calls
        assert report.best_term == result.best_term  # parses back to the term
        assert report.ok

    def test_error_report(self):
        report = OptimizationReport.from_error(
            {"kernel": "gemv", "target": "blas", "limits": {}}, "boom"
        )
        assert not report.ok
        assert report.error == "boom"
        assert OptimizationReport.from_json(report.to_json()) == report


class TestCacheKey:
    def test_stable_and_discriminating(self):
        key = report_cache_key("xs", {"xs": [8]}, "blas", (8, 12_000, 120.0))
        assert key == report_cache_key("xs", {"xs": [8]}, "blas", (8, 12_000, 120.0))
        assert key != report_cache_key("ys", {"xs": [8]}, "blas", (8, 12_000, 120.0))
        assert key != report_cache_key("xs", {"xs": [9]}, "blas", (8, 12_000, 120.0))
        assert key != report_cache_key("xs", {"xs": [8]}, "pytorch", (8, 12_000, 120.0))
        assert key != report_cache_key("xs", {"xs": [8]}, "blas", (9, 12_000, 120.0))
