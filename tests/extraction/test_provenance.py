"""Rule provenance: the union-origin log, solution_rules, the
solution_unions telemetry, and the provenance-aware pruning mode."""

import pytest

from repro.egraph import EGraph
from repro.saturation import Runner
from repro.egraph.rewrite import rewrite
from repro.extraction import (
    AstSizeCost,
    GreedyExtractor,
    contributing_events,
    solution_rule_counts,
    solution_rules,
)
from repro.ir import parse
from repro.rules.dsl import padd, pconst, pv
from repro.saturation.pruning import PruningPolicy
from repro.saturation.telemetry import RuleStats


class TestUnionOriginLog:
    def test_untagged_mutations_not_logged(self):
        eg = EGraph()
        eg.add_term(parse("a + 0"))
        assert eg.union_origins == []

    def test_tagged_creation_and_union_logged(self):
        eg = EGraph()
        root = eg.add_term(parse("a + 0"))
        eg.origin_tag = "my-rule"
        other = eg.add_term(parse("q"))
        eg.merge(root, other)
        eg.origin_tag = None
        kinds = [(tag, b == -1) for tag, _, b in eg.union_origins]
        assert ("my-rule", True) in kinds    # creation
        assert ("my-rule", False) in kinds   # union

    def test_noop_merge_not_logged(self):
        eg = EGraph()
        a = eg.add_term(parse("a"))
        eg.origin_tag = "r"
        eg.merge(a, a)
        eg.origin_tag = None
        assert eg.union_origins == []


class TestSolutionRules:
    def _saturated(self):
        eg = EGraph()
        root = eg.add_term(parse("x + 0"))
        rule = rewrite("add-zero", padd(pv("x"), pconst(0)), pv("x"))
        result = Runner(eg, [rule], step_limit=5).run(
            root, cost_model=AstSizeCost()
        )
        return eg, root, result

    def test_contributing_rule_reported(self):
        eg, root, result = self._saturated()
        assert result.final.best_term == parse("x")
        assert "add-zero" in result.final.solution_rules
        assert "add-zero" in result.solution_rules  # RunResult property
        chosen = GreedyExtractor(eg, AstSizeCost()).extract(eg.find(root)).chosen
        counts = solution_rule_counts(eg, chosen)
        assert counts.get("add-zero", 0) >= 1
        assert solution_rules(eg, chosen) == tuple(sorted(counts))

    def test_step_zero_has_no_provenance(self):
        _, _, result = self._saturated()
        assert result.steps[0].solution_rules == ()

    def test_solution_unions_telemetry(self):
        _, _, result = self._saturated()
        stats = result.rule_stats["add-zero"]
        assert stats.solution_unions >= 1
        assert stats.to_dict()["solution_unions"] == stats.solution_unions
        # Round-trip tolerates both old (no key) and new dicts.
        rebuilt = RuleStats.from_dict(stats.to_dict())
        assert rebuilt.solution_unions == stats.solution_unions
        legacy = {k: v for k, v in stats.to_dict().items()
                  if k != "solution_unions"}
        assert RuleStats.from_dict(legacy).solution_unions == 0

    def test_empty_chosen_empty_provenance(self):
        eg = EGraph()
        eg.add_term(parse("a"))
        assert contributing_events(eg, {}) == {}


class TestProvenanceAwarePruning:
    def _stats(self, **kwargs):
        base = dict(
            name="r", matches_found=50_000, unions=0, solution_unions=0
        )
        base.update(kwargs)
        return RuleStats(**base)

    def test_wasteful_without_contribution_pruned(self):
        assert PruningPolicy().is_wasteful(self._stats())

    def test_solution_contributor_never_pruned(self):
        stats = self._stats(solution_unions=3)
        assert not PruningPolicy().is_wasteful(stats)

    def test_protection_can_be_disabled(self):
        stats = self._stats(solution_unions=3)
        policy = PruningPolicy(protect_solution_rules=False)
        assert policy.is_wasteful(stats)

    def test_old_profiles_degrade_to_ratio_policy(self):
        # Pre-provenance profiles carry solution_unions == 0 everywhere;
        # behaviour is then exactly the old ratio policy.
        assert PruningPolicy().is_wasteful(self._stats(solution_unions=0))
        assert not PruningPolicy().is_wasteful(
            self._stats(matches_found=10)
        )


class TestGemvAcceptance:
    """The ISSUE acceptance bar: gemv's provenance names I-Gemv and
    excludes at least one rule the ratio policy prunes."""

    def test_gemv_solution_rules(self):
        from repro.experiments import optimize_pair
        from repro.saturation.pruning import RuleProfile, prune_rules
        from repro.saturation.telemetry import rule_stats_to_dict
        from repro.targets import blas_target

        result = optimize_pair("gemv", "blas")
        assert result.final.library_calls == {"gemv": 1}
        rules_used = result.solution_rules
        assert "I-Gemv" in rules_used

        # Build a profile from this very run and ask the (ratio-only)
        # policy what it would prune; every pruned rule must be absent
        # from the solution's provenance.
        profile = RuleProfile.from_dict({
            "schema": "repro-rule-profile/1",
            "runs": [{
                "kernel": "gemv",
                "target": "blas",
                "rule_stats": rule_stats_to_dict(result.run.rule_stats),
            }],
        })
        _, pruned = prune_rules(
            blas_target().rules, profile, kernel="gemv", target="blas"
        )
        assert pruned, "expected the ratio policy to prune something on gemv"
        assert not set(pruned) & set(rules_used)
