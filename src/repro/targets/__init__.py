"""Target-specific components: cost models (listings 6–8) and the
target bundles (Pure C / BLAS / PyTorch) of §VI."""

from .base import (
    TARGET_NAMES,
    Target,
    blas_target,
    make_target,
    pure_c_target,
    pytorch_target,
)
from .cost import BaseCostModel, BlasCostModel, TorchCostModel

__all__ = [
    "Target", "TARGET_NAMES", "make_target",
    "pure_c_target", "blas_target", "pytorch_target",
    "BaseCostModel", "BlasCostModel", "TorchCostModel",
]
