"""RemoteSession and the ``--remote`` CLI path against a live daemon."""

import pytest

from repro.api.limits import Limits
from repro.api.session import Session
from repro.api.types import OptimizationReport, report_fingerprint
from repro.server.client import RemoteError, RemoteSession

TINY = Limits(step_limit=3, node_limit=2000, time_limit=30.0)


class TestRemoteSession:
    def test_report_round_trip(self, remote):
        report = remote.report(("vsum", "blas"))
        assert isinstance(report, OptimizationReport)
        assert report.ok and report.kernel == "vsum"
        assert report.steps <= TINY.step_limit

    def test_service_equals_one_shot_session(self, remote):
        """The tentpole contract: the daemon's report is byte-identical
        (modulo the documented volatile fields) to the in-process one."""
        via_service = remote.report(("dot", "blas"))
        one_shot = Session(TINY).report(("dot", "blas"))
        assert report_fingerprint(via_service) == report_fingerprint(one_shot)

    def test_optimize_many_preserves_order_and_degrades_errors(self, remote):
        reports = remote.optimize_many(
            [("vsum", "blas"), ("ghost", "blas"), ("dot", "blas")])
        assert [r.kernel for r in reports] == ["vsum", "ghost", "dot"]
        assert reports[0].ok and reports[2].ok
        assert not reports[1].ok
        assert "unknown_kernel" in reports[1].error

    def test_submit_then_wait(self, remote):
        job_id = remote.submit(("vsum", "blas"))
        job = remote.job(job_id)
        assert job["id"] == job_id
        report = remote.wait(job_id, timeout=30.0)
        assert report.ok

    def test_submit_rejection_raises(self, remote):
        with pytest.raises(RemoteError) as info:
            remote.submit(("ghost", "blas"))
        assert info.value.status == 400
        assert info.value.code == "unknown_kernel"

    def test_introspection(self, remote):
        health = remote.healthz()
        assert health["status"] == "ok"
        assert health["pool"]["warm"] is True
        assert "blas" in remote.target_names()
        assert "http_requests_total" in remote.metrics_text()

    def test_local_target_resolution(self, remote):
        assert remote.target("blas").name == "blas"

    def test_unreachable_daemon(self):
        client = RemoteSession("http://127.0.0.1:9", timeout=1.0)
        with pytest.raises(RemoteError) as info:
            client.healthz()
        assert info.value.code == "unreachable"
        # The Session-shaped surface degrades instead of raising.
        report = client.report(("vsum", "blas"))
        assert not report.ok and "unreachable" in report.error


class TestRemoteCLI:
    def test_remote_run_matches_local_csv(self, live_server, tmp_path):
        from repro.cli import main

        flags = ["vsum", "dot", "-t", "blas", "-q",
                 "--steps", "3", "--nodes", "2000", "--time-limit", "30"]
        assert main(flags + ["--remote", live_server.url,
                             "--out", str(tmp_path / "remote")]) == 0
        assert main(flags + ["--out", str(tmp_path / "local")]) == 0
        remote_csv = (tmp_path / "remote" / "blas-overview.csv").read_text()
        local_csv = (tmp_path / "local" / "blas-overview.csv").read_text()
        assert remote_csv == local_csv

    def test_remote_rejects_path_flags(self, live_server, tmp_path, capsys):
        from repro.cli import main

        code = main(["vsum", "-q", "--remote", live_server.url,
                     "--trace", str(tmp_path / "trace.json")])
        assert code == 2
        assert "--trace" in capsys.readouterr().err

    def test_remote_metrics_snapshot(self, live_server, tmp_path):
        from repro.cli import main

        metrics = tmp_path / "metrics.prom"
        assert main(["vsum", "-t", "blas", "-q",
                     "--steps", "3", "--nodes", "2000", "--time-limit", "30",
                     "--remote", live_server.url,
                     "--metrics", str(metrics)]) == 0
        assert "repro_cache" in metrics.read_text()
