"""Tests for the vectorizing numpy backend (repro.backend.numpy_compiler)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.executor import outputs_match
from repro.backend.numpy_compiler import CompileError, compile_term
from repro.ir import builders as b, parse
from repro.ir.interp import evaluate
from repro.kernels import all_kernels


class TestScalars:
    def test_arithmetic(self):
        assert compile_term(parse("1 + 2 * 3"))({}) == 7.0

    def test_symbols(self):
        assert compile_term(parse("x * y"))({"x": 3.0, "y": 4.0}) == 12.0

    def test_comparisons(self):
        assert compile_term(parse("3 > 2"))({}) == 1.0

    def test_unbound_symbol_raises(self):
        with pytest.raises(CompileError):
            compile_term(parse("nope"))({})


class TestBuilds:
    def test_simple_build(self):
        out = compile_term(parse("build 4 (λ •0 * 2)"))({})
        assert list(out) == [0, 2, 4, 6]

    def test_nested_build(self):
        out = compile_term(parse("build 2 (λ build 3 (λ •1 * 10 + •0))"))({})
        assert out.shape == (2, 3)
        assert out[1][2] == 12

    def test_build_of_symbol_lookup(self):
        xs = np.array([5.0, 6.0, 7.0, 8.0])
        out = compile_term(parse("build 4 (λ xs[•0])"))({"xs": xs})
        assert np.array_equal(out, xs)

    def test_window_gather(self):
        xs = np.arange(10.0)
        out = compile_term(parse("build 4 (λ build 3 (λ xs[•1 + •0]))"))({"xs": xs})
        assert out.shape == (4, 3)
        assert list(out[2]) == [2, 3, 4]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(CompileError):
            compile_term(parse("build 4 (λ xs[•0 + 3])"))({"xs": np.zeros(4)})


class TestIFold:
    def test_sum(self):
        out = compile_term(parse("ifold 4 0 (λ λ •1 + •0)"))({})
        assert out == 6.0

    def test_dot_loop_inside_build(self):
        rng = np.random.default_rng(0)
        a, x = rng.standard_normal((4, 8)), rng.standard_normal(8)
        term = parse("build 4 (λ ifold 8 0 (λ λ A[•2][•1] * x[•1] + •0))")
        out = compile_term(term)({"A": a, "x": x})
        assert np.allclose(out, a @ x)


class TestLibraryCalls:
    def test_scalar_level_calls(self):
        rng = np.random.default_rng(0)
        a, c = rng.standard_normal(8), rng.standard_normal(8)
        assert compile_term(parse("dot(a, c)"))({"a": a, "c": c}) == pytest.approx(
            float(a @ c)
        )

    def test_gemv_call(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 8))
        x, c = rng.standard_normal(8), rng.standard_normal(4)
        term = parse("gemv(alpha, A, B, beta, C)")
        out = compile_term(term)(
            {"alpha": 2.0, "beta": 3.0, "A": a, "B": x, "C": c}
        )
        assert np.allclose(out, 2 * a @ x + 3 * c)

    def test_batched_call_inside_build(self):
        # The im2col shape: a dot per output element, vectorized.
        rng = np.random.default_rng(2)
        xs = rng.standard_normal(10)
        term = parse("build 8 (λ dot(build 3 (λ xs[•1 + •0]), build 3 (λ 1)))")
        out = compile_term(term)({"xs": xs})
        expected = np.convolve(xs, np.ones(3), "valid")
        assert np.allclose(out, expected)

    def test_memset_and_full(self):
        assert np.allclose(compile_term(parse("memset(0, 4)"))({}), np.zeros(4))
        assert np.allclose(compile_term(parse("full(2.5, 3)"))({}), np.full(3, 2.5))

    def test_gemm_variants(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((4, 5))
        bt = rng.standard_normal((6, 5))
        c = rng.standard_normal((4, 6))
        term = parse("gemm_nt(alpha, A, B, beta, C)")
        out = compile_term(term)(
            {"alpha": 1.5, "beta": 0.5, "A": a, "B": bt, "C": c}
        )
        assert np.allclose(out, 1.5 * a @ bt.T + 0.5 * c)

    def test_mm_and_transpose(self):
        rng = np.random.default_rng(4)
        a, b_ = rng.standard_normal((3, 4)), rng.standard_normal((5, 4))
        out = compile_term(parse("mm(A, transpose(B))"))({"A": a, "B": b_})
        assert np.allclose(out, a @ b_.T)


class TestLambdaHandling:
    def test_beta_redex_normalized_away(self):
        out = compile_term(parse("(λ •0 + 1) 5"))({})
        assert out == 6.0

    def test_residual_lambda_rejected(self):
        with pytest.raises(CompileError):
            compile_term(parse("build 2 (λ f •0)"))({})

    def test_tuple_at_top_level(self):
        out = compile_term(parse("tuple (build 2 (λ 1)) (build 2 (λ 2))"))({})
        assert isinstance(out, tuple)
        assert np.allclose(out[0], [1, 1])


class TestAgainstInterpreter:
    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_all_source_kernels_match_reference(self, kernel):
        inputs = kernel.inputs(5)
        out = compile_term(kernel.term)(inputs)
        assert outputs_match(out, kernel.reference(inputs))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(-3, 3), st.integers(1, 4))
    def test_parametric_loops_match_interpreter(self, size, constant, inner):
        term = b.build(
            size,
            b.lam(
                b.ifold(inner, constant, b.lam2(b.v(1) * b.v(2) + b.v(0)))
            ),
        )
        compiled = compile_term(term)({})
        interpreted = evaluate(term)
        assert outputs_match(compiled, interpreted)
