"""Unit tests for the term ADT (repro.ir.terms)."""

import pytest

from repro.ir import builders as b
from repro.ir.terms import (
    App,
    Build,
    Call,
    Const,
    IFold,
    Index,
    Lam,
    Symbol,
    Term,
    Tuple,
    Var,
    children,
    collect_calls,
    collect_sizes,
    collect_symbols,
    free_indices,
    is_closed,
    max_free_index,
    subterms,
    term_size,
    with_children,
)


class TestConstruction:
    def test_var_requires_nonnegative_index(self):
        with pytest.raises(ValueError):
            Var(-1)

    def test_build_requires_nonnegative_size(self):
        with pytest.raises(ValueError):
            Build(-3, Lam(Var(0)))

    def test_ifold_requires_int_size(self):
        with pytest.raises(ValueError):
            IFold("n", Const(0), Lam(Lam(Var(0))))

    def test_const_rejects_bool(self):
        with pytest.raises(TypeError):
            Const(True)

    def test_const_rejects_string(self):
        with pytest.raises(TypeError):
            Const("x")

    def test_call_args_coerced_to_tuple(self):
        call = Call("f", [Const(1), Const(2)])
        assert isinstance(call.args, tuple)

    def test_terms_are_hashable_and_equal_by_value(self):
        t1 = b.lam(b.v(0) + 1)
        t2 = b.lam(b.v(0) + 1)
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 is not t2

    def test_alpha_equivalent_lambdas_are_identical(self):
        # De Bruijn indices make alpha-equivalence syntactic (§IV-A1).
        identity_a = Lam(Var(0))
        identity_b = Lam(Var(0))
        assert identity_a == identity_b


class TestOperatorSugar:
    def test_add_builds_call(self):
        term = b.sym("x") + 1
        assert term == Call("+", (Symbol("x"), Const(1)))

    def test_radd_coerces_left_operand(self):
        term = 2 + b.sym("x")
        assert term == Call("+", (Const(2), Symbol("x")))

    def test_mul_sub_div(self):
        x = b.sym("x")
        assert (x * 3).name == "*"
        assert (x - 3).name == "-"
        assert (x / 3).name == "/"

    def test_getitem_builds_index(self):
        term = b.sym("xs")[b.v(0)]
        assert term == Index(Symbol("xs"), Var(0))

    def test_call_syntax_builds_apps(self):
        f = b.lam(b.v(0))
        applied = f(1, 2)
        assert applied == App(App(f, Const(1)), Const(2))

    def test_bool_coercion_rejected(self):
        with pytest.raises(TypeError):
            b.sym("x") + True


class TestTraversal:
    def test_children_of_leaves(self):
        assert children(Var(0)) == ()
        assert children(Const(1)) == ()
        assert children(Symbol("a")) == ()

    def test_children_of_compound_nodes(self):
        term = b.ifold(4, 0, b.lam2(b.v(0)))
        init, fn = children(term)
        assert init == Const(0)
        assert isinstance(fn, Lam)

    def test_with_children_roundtrip(self):
        for term in [
            b.lam(b.v(0)),
            b.app(b.lam(b.v(0)), 1),
            b.build(4, b.lam(b.v(0))),
            b.sym("a")[b.v(0)],
            b.ifold(4, 0, b.lam2(b.v(0))),
            b.tup(1, 2),
            b.fst(b.tup(1, 2)),
            b.snd(b.tup(1, 2)),
            b.call("f", 1, 2),
        ]:
            assert with_children(term, children(term)) == term

    def test_with_children_replaces(self):
        term = b.build(4, b.lam(b.v(0)))
        replaced = with_children(term, (b.lam(Const(7)),))
        assert replaced == b.build(4, b.lam(7))

    def test_with_children_arity_checked(self):
        with pytest.raises(ValueError):
            with_children(Const(1), (Const(2),))

    def test_term_size(self):
        assert term_size(Const(1)) == 1
        assert term_size(b.sym("x") + 1) == 3
        assert term_size(b.build(4, b.lam(b.v(0)))) == 3

    def test_subterms_preorder(self):
        term = b.sym("x") + 1
        nodes = list(subterms(term))
        assert nodes[0] == term
        assert Const(1) in nodes
        assert Symbol("x") in nodes


class TestFreeIndices:
    def test_closed_term(self):
        assert is_closed(b.lam(b.v(0)))
        assert free_indices(b.lam(b.v(0))) == set()

    def test_open_term(self):
        assert free_indices(b.v(2)) == {2}
        assert max_free_index(b.v(2)) == 2

    def test_lambda_binds_innermost(self):
        term = b.lam(b.v(0) + b.v(1))
        assert free_indices(term) == {0}

    def test_double_lambda(self):
        term = b.lam2(b.v(1) * b.v(0) + b.v(2))
        assert free_indices(term) == {0}

    def test_max_free_index_of_closed_is_minus_one(self):
        assert max_free_index(Const(3)) == -1

    def test_build_does_not_bind(self):
        # build's function child is a lambda; build itself binds nothing.
        term = b.build(4, b.lam(b.v(1)))
        assert free_indices(term) == {0}


class TestCollectors:
    def test_collect_sizes(self):
        term = b.build(4, b.lam(b.ifold(8, 0, b.lam2(b.v(0)))))
        assert collect_sizes(term) == {4, 8}

    def test_collect_calls_counts(self):
        term = b.call("dot", b.sym("a"), b.call("dot", b.sym("b"), b.sym("c")))
        assert collect_calls(term) == {"dot": 2}

    def test_collect_symbols(self):
        term = b.sym("A")[b.v(0)] + b.sym("alpha")
        assert collect_symbols(term) == {"A", "alpha"}
