"""C code generator tests: golden structure checks plus (when a C
compiler is present) an end-to-end compile-and-run comparison against
the numpy reference."""

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.backend.c_codegen import CodegenError, generate_c, generate_c_program
from repro.ir import parse
from repro.ir.shapes import SCALAR, matrix, vector

HAVE_CC = shutil.which("gcc") or shutil.which("cc")


class TestGeneration:
    def test_scalar_kernel_returns_double(self):
        code = generate_c(parse("dot(A, B)"), {"A": vector(8), "B": vector(8)})
        assert code.startswith("double kernel(")
        assert "shim_dot(8, A, B)" in code

    def test_vector_kernel_takes_out_param(self):
        code = generate_c(
            parse("build 4 (λ x[•0] * 2)"), {"x": vector(4)}, "scale2"
        )
        assert "void scale2(" in code
        assert "double *out" in code
        assert "for (int" in code

    def test_loop_nest_for_matvec(self):
        code = generate_c(
            parse("build 4 (λ ifold 8 0 (λ λ A[•2][•1] * x[•1] + •0))"),
            {"A": matrix(4, 8), "x": vector(8)},
        )
        assert code.count("for (int") == 2
        assert "* 8 +" in code  # row-major flattening

    def test_gemv_call_lowered_to_shim(self):
        shapes = {
            "alpha": SCALAR, "beta": SCALAR,
            "A": matrix(4, 8), "B": vector(8), "C": vector(4),
        }
        code = generate_c(parse("gemv(alpha, A, B, beta, C)"), shapes)
        assert "shim_gemv(0, 4, 8, alpha, A, B, beta, C, out);" in code

    def test_gemv_t_sets_transpose_flag(self):
        shapes = {
            "alpha": SCALAR, "beta": SCALAR,
            "A": matrix(4, 8), "B": vector(4), "C": vector(8),
        }
        code = generate_c(parse("gemv_t(alpha, A, B, beta, C)"), shapes)
        assert "shim_gemv(1, 4, 8," in code

    def test_memset_emitted_as_fill_loop(self):
        code = generate_c(parse("memset(0, 16)"), {})
        assert "for (int m = 0; m < 16; m++) out[m] = 0;" in code

    def test_nested_call_materializes_buffer(self):
        shapes = {"A": matrix(4, 8), "x": vector(8)}
        code = generate_c(parse("mv(A, x)[2]"), shapes)
        assert "double buf" in code
        assert "shim_mv(4, 8, A, x, buf" in code

    def test_program_includes_shim(self):
        program = generate_c_program(parse("dot(A, B)"),
                                     {"A": vector(4), "B": vector(4)})
        assert "static double shim_dot" in program
        assert "double kernel(" in program

    def test_residual_lambda_rejected(self):
        with pytest.raises(CodegenError):
            generate_c(parse("(λ •0) 1"), {})

    def test_tuple_kernel_rejected(self):
        with pytest.raises(CodegenError):
            generate_c(parse("tuple 1 2"), {})


@pytest.mark.skipif(not HAVE_CC, reason="no C compiler available")
class TestCompileAndRun:
    def _compile(self, program: str) -> ctypes.CDLL:
        tmp = Path(tempfile.mkdtemp())
        source = tmp / "kernel.c"
        source.write_text(program.replace("double kernel", "double entry", 1)
                          .replace("void kernel", "void entry", 1))
        library = tmp / "kernel.so"
        compiler = shutil.which("gcc") or shutil.which("cc")
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(library), str(source)],
            check=True,
        )
        return ctypes.CDLL(str(library))

    def test_dot_kernel_matches_numpy(self):
        program = generate_c_program(
            parse("dot(A, B)"), {"A": vector(8), "B": vector(8)}
        )
        lib = self._compile(program)
        lib.entry.restype = ctypes.c_double
        rng = np.random.default_rng(0)
        a = rng.standard_normal(8)
        b_ = rng.standard_normal(8)
        ptr = lambda arr: arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        got = lib.entry(ptr(a), ptr(b_))
        assert got == pytest.approx(float(a @ b_))

    def test_gemv_kernel_matches_numpy(self):
        shapes = {
            "alpha": SCALAR, "beta": SCALAR,
            "A": matrix(4, 8), "B": vector(8), "C": vector(4),
        }
        program = generate_c_program(parse("gemv(alpha, A, B, beta, C)"), shapes)
        lib = self._compile(program)
        lib.entry.restype = None
        rng = np.random.default_rng(1)
        a = np.ascontiguousarray(rng.standard_normal((4, 8)))
        x = rng.standard_normal(8)
        c = rng.standard_normal(4)
        out = np.zeros(4)
        ptr = lambda arr: arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        lib.entry(ptr(a), ptr(x), ptr(c),
                  ctypes.c_double(2.0), ctypes.c_double(3.0), ptr(out))
        assert np.allclose(out, 2.0 * a @ x + 3.0 * c)

    def test_loop_nest_matches_numpy(self):
        program = generate_c_program(
            parse("build 4 (λ ifold 8 0 (λ λ A[•2][•1] * x[•1] + •0))"),
            {"A": matrix(4, 8), "x": vector(8)},
        )
        lib = self._compile(program)
        lib.entry.restype = None
        rng = np.random.default_rng(2)
        a = np.ascontiguousarray(rng.standard_normal((4, 8)))
        x = rng.standard_normal(8)
        out = np.zeros(4)
        ptr = lambda arr: arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        lib.entry(ptr(a), ptr(x), ptr(out))
        assert np.allclose(out, a @ x)
