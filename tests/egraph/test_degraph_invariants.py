"""Property tests for saturation-level e-graph invariants.

Beyond the unit congruence checks, these properties exercise the
engine the way LIAR uses it: full rule sets over IR programs, checking
the representation invariants that extraction and matching rely on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.egraph import EGraph, ShapeAnalysis
from repro.saturation import Runner
from repro.ir import builders as b
from repro.ir.shapes import SCALAR, vector
from repro.ir.terms import Call, Const, Symbol, free_indices
from repro.rules import core_rules, scalar_rules

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_programs(draw):
    size = draw(st.integers(2, 4))
    body_kind = draw(st.integers(0, 2))
    if body_kind == 0:
        body = b.sym("xs")[b.v(0)] + draw(st.integers(0, 3))
    elif body_kind == 1:
        body = b.sym("xs")[b.v(0)] * b.sym("alpha")
    else:
        body = b.sym("xs")[b.v(0)] + b.sym("xs")[b.v(0)] * 1
    return b.build(size, b.lam(body)), size


@SETTINGS
@given(small_programs())
def test_hashcons_stays_canonical_after_saturation(case):
    term, size = case
    eg = EGraph(ShapeAnalysis({"xs": vector(size), "alpha": SCALAR}))
    root = eg.add_term(term)
    Runner(eg, core_rules() + scalar_rules(), step_limit=2,
           node_limit=1500).run(root)
    for enode, class_id in eg._memo.items():
        assert eg.canonicalize(enode) == enode
        assert class_id in eg._classes or eg.find(class_id) in eg._classes


@SETTINGS
@given(small_programs())
def test_every_class_has_an_extractable_term(case):
    term, size = case
    eg = EGraph(ShapeAnalysis({"xs": vector(size), "alpha": SCALAR}))
    root = eg.add_term(term)
    Runner(eg, core_rules() + scalar_rules(), step_limit=2,
           node_limit=1500).run(root)
    # Every class created by term insertion + these rules represents at
    # least one finite term.
    extractable = sum(
        1 for class_id in eg.class_ids()
        if eg.extract_smallest(class_id) is not None
    )
    assert extractable == eg.num_classes


@SETTINGS
@given(small_programs())
def test_root_stays_reachable_and_stable(case):
    term, size = case
    eg = EGraph(ShapeAnalysis({"xs": vector(size), "alpha": SCALAR}))
    root = eg.add_term(term)
    Runner(eg, core_rules() + scalar_rules(), step_limit=2,
           node_limit=1500).run(root)
    # Re-adding the original term must land in the root's class.
    assert eg.same(eg.add_term(term), root)


@SETTINGS
@given(small_programs())
def test_extracted_root_term_is_closed(case):
    term, size = case
    eg = EGraph(ShapeAnalysis({"xs": vector(size), "alpha": SCALAR}))
    root = eg.add_term(term)
    Runner(eg, core_rules() + scalar_rules(), step_limit=2,
           node_limit=1500).run(root)
    extracted = eg.extract_smallest(root)
    assert extracted is not None
    # The smallest representative of a closed program is closed: open
    # representatives are strictly larger ((λ e↑) y adds two nodes).
    assert not free_indices(extracted)
