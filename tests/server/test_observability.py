"""The serve-layer observability stack: trace propagation, the
structured event log, the flight recorder, and the debug endpoints —
driven socket-free through ``OptimizationServer.handle_request``."""

import json
import time

import pytest

from repro.api.limits import Limits
from repro.api.session import Session
from repro.api.types import OptimizationReport, OptimizationRequest
from repro.server import (
    ObservabilityConfig,
    OptimizationServer,
    ServeConfig,
    TRACE_ID_HEADER,
)
from repro.server.queue import JobQueue

TINY = Limits(step_limit=3, node_limit=2000, time_limit=30.0)


def call(app, method, path, body=None, headers=None):
    payload = (json.dumps(body).encode("utf-8") if isinstance(body, dict)
               else (body or b""))
    status, ctype, data, extra = app.handle_request(
        method, path, headers or {}, payload)
    parsed = (json.loads(data) if ctype.startswith("application/json")
              else data.decode("utf-8"))
    return status, parsed, extra


def wait_done(app, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, answer, _ = call(app, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if answer["job"]["status"] in ("done", "failed"):
            return answer["job"]
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


def wait_event(app, kind, timeout=30.0, **filters):
    """Poll the event ring until an event of ``kind`` matches."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events = app.events.tail(event=kind, **filters)
        if events:
            return events[-1]
        time.sleep(0.02)
    raise AssertionError(f"no {kind} event within {timeout}s")


@pytest.fixture()
def app(tmp_path):
    """A fully instrumented server (event sink, trace dir, no HTTP
    listener), function-scoped so each test reads a clean ring."""
    config = ServeConfig(
        host="127.0.0.1", port=0, limits=TINY,
        queue_workers=2, pool_workers=0,
        observability=ObservabilityConfig(
            event_log=str(tmp_path / "events.jsonl"),
            ring_size=64,
            flight_recorder=16,
            trace_dir=str(tmp_path / "traces"),
        ),
    )
    server = OptimizationServer(config)
    server.queue.start()
    yield server
    server.stop()


class TestTracePropagation:
    def test_every_response_carries_a_trace_id(self, app):
        for method, path in (("GET", "/v1/healthz"),
                             ("GET", "/v1/metrics"),
                             ("GET", "/v1/nope"),          # 404
                             ("POST", "/v1/healthz"),      # 405
                             ("POST", "/v1/optimize")):    # 400 bad_json
            _, _, extra = call(app, method, path)
            assert extra.get(TRACE_ID_HEADER), (method, path)

    def test_client_supplied_id_is_honored(self, app):
        _, _, extra = call(app, "GET", "/v1/healthz",
                           headers={TRACE_ID_HEADER: "my-trace.01"})
        assert extra[TRACE_ID_HEADER] == "my-trace.01"

    def test_malformed_supplied_id_is_replaced(self, app):
        for bad in ("", "ab", "x" * 65, "sp ace", "semi;colon"):
            _, _, extra = call(app, "GET", "/v1/healthz",
                               headers={TRACE_ID_HEADER: bad})
            minted = extra[TRACE_ID_HEADER]
            assert minted != bad and len(minted) == 16

    def test_minted_ids_are_unique(self, app):
        ids = {call(app, "GET", "/v1/healthz")[2][TRACE_ID_HEADER]
               for _ in range(20)}
        assert len(ids) == 20

    def test_trace_id_flows_into_job_and_trace_file(self, app, tmp_path):
        status, answer, extra = call(
            app, "POST", "/v1/optimize",
            {"kernel": "dot", "target": "blas"},
            headers={TRACE_ID_HEADER: "e2e-trace-1"})
        assert status == 202
        assert extra[TRACE_ID_HEADER] == "e2e-trace-1"
        assert answer["job"]["trace_id"] == "e2e-trace-1"
        job = wait_done(app, answer["job"]["id"])
        assert job["status"] == "done"
        completed = wait_event(app, "request.completed",
                               trace_id="e2e-trace-1")
        trace_file = tmp_path / "traces" / "e2e-trace-1.trace.json"
        assert trace_file.exists()
        trace = json.loads(trace_file.read_text())
        assert trace["otherData"]["trace_id"] == "e2e-trace-1"
        names = [e.get("name", "") for e in trace["traceEvents"]]
        assert "queue_wait" in names and "run" in names
        assert any(n.startswith("request:dot/blas") for n in names)
        # The engine's own spans merged into the same file.
        assert any(n.startswith("saturate:") for n in names)
        assert completed["status"] == "done"


class TestEventLifecycle:
    def test_accepted_job_emits_the_full_event_chain(self, app):
        status, answer, extra = call(app, "POST", "/v1/optimize",
                                     {"kernel": "vsum", "target": "blas"})
        assert status == 202
        trace_id = extra[TRACE_ID_HEADER]
        wait_done(app, answer["job"]["id"])
        completed = wait_event(app, "request.completed", trace_id=trace_id)
        kinds = [e["event"] for e in app.events.tail(trace_id=trace_id)]
        assert "job.started" in kinds
        assert kinds.count("request.completed") == 1  # exactly one
        accepted = app.events.tail(event="request.accepted",
                                   trace_id=trace_id)
        assert accepted and accepted[0]["tenant"] == "anonymous"
        assert completed["tenant"] == "anonymous"
        assert completed["kernel"] == "vsum"
        assert completed["status"] == "done"
        assert completed["total_seconds"] >= completed["run_seconds"]

    def test_rejection_still_emits_completed_with_4xx(self, app):
        status, answer, extra = call(
            app, "POST", "/v1/optimize",
            {"kernel": "dot", "target": "no-such-target"})
        assert status == 400
        trace_id = extra[TRACE_ID_HEADER]
        events = app.events.tail(trace_id=trace_id)
        kinds = [e["event"] for e in events]
        assert "request.rejected" in kinds
        assert kinds.count("request.completed") == 1
        completed = [e for e in events
                     if e["event"] == "request.completed"][0]
        assert completed["status"] == 400
        assert completed["code"] == "unknown_target"
        assert completed["outcome"] == "rejected"
        assert completed["kernel"] == "dot"

    def test_server_log_is_structured(self, app):
        app.log("socket says ouch")
        (event,) = app.events.tail(event="server.log")
        assert event["message"] == "socket says ouch"

    def test_server_started_event_reaches_the_sink(self, app, tmp_path):
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "server.started"
        assert events[0]["schema"] == "repro-events/1"

    def test_http_request_event_per_response(self, app):
        _, _, extra = call(app, "GET", "/v1/healthz")
        event = wait_event(app, "http.request",
                           trace_id=extra[TRACE_ID_HEADER])
        assert event["route"] == "/v1/healthz"
        assert event["status"] == 200
        assert event["duration_ms"] >= 0


class TestFlightRecorderEndpoint:
    def test_debug_requests_shows_the_request(self, app):
        status, answer, extra = call(app, "POST", "/v1/optimize",
                                     {"kernel": "dot", "target": "blas"})
        assert status == 202
        trace_id = extra[TRACE_ID_HEADER]
        wait_done(app, answer["job"]["id"])
        wait_event(app, "request.completed", trace_id=trace_id)
        status, answer, _ = call(app, "GET", "/v1/debug/requests")
        assert status == 200
        assert answer["capacity"] == 16
        entry = next(e for e in answer["requests"]
                     if e["trace_id"] == trace_id)
        assert entry["tenant"] == "anonymous"
        assert entry["outcome"] == "done"
        assert entry["job"] == json.loads(json.dumps(entry["job"]))
        assert entry["total_seconds"] >= entry["run_seconds"] >= 0
        assert entry["trace_path"].endswith(f"{trace_id}.trace.json")

    def test_rejected_request_is_recorded(self, app):
        _, _, extra = call(app, "POST", "/v1/optimize", b"not json")
        trace_id = extra[TRACE_ID_HEADER]
        _, answer, _ = call(app, "GET", "/v1/debug/requests")
        entry = next(e for e in answer["requests"]
                     if e["trace_id"] == trace_id)
        assert entry["outcome"] == "rejected"
        assert entry["status"] == 400 and entry["code"] == "bad_json"

    def test_n_and_tenant_filters(self, app):
        for _ in range(3):
            call(app, "POST", "/v1/optimize", b"not json")
        status, answer, _ = call(app, "GET", "/v1/debug/requests?n=2")
        assert status == 200 and answer["count"] == 2
        status, answer, _ = call(app, "GET",
                                 "/v1/debug/requests?tenant=nobody")
        assert status == 200 and answer["requests"] == []
        status, answer, _ = call(app, "GET", "/v1/debug/requests?n=frog")
        assert status == 400
        assert answer["error"]["code"] == "bad_request"

    def test_queue_full_unadmits_the_record(self, tmp_path):
        """A 429 must not leave a stale 'queued' flight record behind."""
        config = ServeConfig(
            host="127.0.0.1", port=0, limits=TINY,
            queue_workers=1, pool_workers=0, max_queue=1,
            observability=ObservabilityConfig(flight_recorder=16),
        )
        server = OptimizationServer(config)  # queue workers NOT started
        try:
            statuses = []
            for _ in range(4):
                status, _, _ = call(server, "POST", "/v1/optimize",
                                    {"kernel": "dot", "target": "blas"})
                statuses.append(status)
            assert 429 in statuses
            records = server.recorder.requests()
            rejected = [e for e in records if e["outcome"] == "rejected"]
            assert all(e["code"] == "queue_full" for e in rejected)
            # Accepted records = the 202s; no orphaned 'queued' extras.
            assert len(records) == len(statuses)
        finally:
            server.stop()


class TestDebugAuth:
    @pytest.fixture()
    def guarded(self):
        config = ServeConfig(
            host="127.0.0.1", port=0, limits=TINY, pool_workers=0,
            observability=ObservabilityConfig(debug_token="sesame"),
        )
        server = OptimizationServer(config)
        yield server
        server.stop()

    def test_missing_token_is_403(self, guarded):
        status, answer, extra = call(guarded, "GET", "/v1/debug/requests")
        assert status == 403
        assert answer["error"]["code"] == "debug_forbidden"
        assert extra[TRACE_ID_HEADER]  # even the 403 carries the id

    def test_wrong_token_is_403(self, guarded):
        status, _, _ = call(guarded, "GET", "/v1/debug/requests",
                            headers={"Authorization": "Bearer wrong"})
        assert status == 403

    def test_bearer_token_opens_the_door(self, guarded):
        status, answer, _ = call(
            guarded, "GET", "/v1/debug/requests",
            headers={"Authorization": "Bearer sesame"})
        assert status == 200 and answer["requests"] == []

    def test_healthz_echoes_debug_auth_flag(self, guarded):
        _, answer, _ = call(guarded, "GET", "/v1/healthz")
        assert answer["observability"]["debug_auth"] is True


class TestIntrospectionSurfaces:
    def test_healthz_observability_echo(self, app, tmp_path):
        _, answer, _ = call(app, "GET", "/v1/healthz")
        obs = answer["observability"]
        assert obs["event_log"] == str(tmp_path / "events.jsonl")
        assert obs["ring_size"] == 64
        assert obs["flight_recorder"] == 16
        assert obs["trace_dir"] == str(tmp_path / "traces")
        assert obs["debug_auth"] is False
        assert obs["events_emitted"] >= 1  # server.started at minimum
        assert isinstance(answer["package_version"], str)
        assert answer["started_at"] <= time.time()
        assert answer["uptime_seconds"] >= 0

    def test_metrics_json_snapshot(self, app):
        status, answer, extra = call(app, "GET",
                                     "/v1/metrics?format=json")
        assert status == 200
        assert answer["schema"] == "repro-metrics/1"
        assert "server" in answer["families"]
        assert extra[TRACE_ID_HEADER]

    def test_tenant_latency_histograms_populate(self, app):
        status, answer, _ = call(app, "POST", "/v1/optimize",
                                 {"kernel": "dot", "target": "blas"})
        assert status == 202
        wait_done(app, answer["job"]["id"])
        _, snapshot, _ = call(app, "GET", "/v1/metrics?format=json")
        server_family = snapshot["families"]["server"]
        for name in ("queue_wait_seconds", "job_seconds", "e2e_seconds"):
            metric = server_family[name]
            assert metric["kind"] == "histogram"
            (sample,) = [s for s in metric["samples"]
                         if s["labels"].get("tenant") == "anonymous"]
            assert sample["value"]["count"] >= 1
        completed = server_family["jobs_completed_total"]
        assert any(s["labels"] == {"status": "done", "tenant": "anonymous"}
                   for s in completed["samples"])

    def test_ring_wraparound_under_load(self, tmp_path):
        config = ServeConfig(
            host="127.0.0.1", port=0, limits=TINY, pool_workers=0,
            observability=ObservabilityConfig(ring_size=8),
        )
        server = OptimizationServer(config)
        try:
            for _ in range(20):
                call(server, "GET", "/v1/healthz")
            assert len(server.events) == 8
            assert server.events.emitted >= 21
            # The retained eight are the newest eight.
            assert all(e["event"] == "http.request"
                       for e in server.events.tail())
        finally:
            server.stop()


class TestFailurePathTraces:
    def _stub_queue(self, session, tmp_path, **kwargs):
        from repro.obs.events import EventLog, FlightRecorder

        return JobQueue(
            session, workers=1, events=EventLog(ring_size=64),
            recorder=FlightRecorder(16),
            trace_dir=str(tmp_path), **kwargs,
        )

    def test_failed_job_still_writes_a_merged_trace(self, tmp_path,
                                                    monkeypatch):
        """Satellite (d): a job that dies mid-flight must still produce
        the completed event, the flight record, and a trace file with
        the daemon spans."""
        session = Session(TINY)
        queue = self._stub_queue(session, tmp_path)

        def boom(requests, parallel=True, max_workers=None):
            raise RuntimeError("pool exploded mid-batch")

        monkeypatch.setattr(session, "optimize_many", boom)
        record = queue.recorder.record(trace_id="fail-1", tenant="acme",
                                       status=202, outcome="queued")
        request = OptimizationRequest(kernel="dot", target="blas")
        job = queue.submit("acme", request, TINY,
                           trace_id="fail-1", record=record)
        queue.start()
        deadline = time.monotonic() + 10
        while job.status not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        queue.stop()
        assert job.status == "failed"
        completed = queue.events.tail(event="request.completed")
        assert len(completed) == 1
        assert completed[0]["status"] == "failed"
        assert "pool exploded" in completed[0]["error"]
        (entry,) = queue.recorder.requests()
        assert entry["outcome"] == "failed"
        trace = json.loads((tmp_path / "fail-1.trace.json").read_text())
        names = [e.get("name", "") for e in trace["traceEvents"]]
        assert "queue_wait" in names and "run" in names

    def test_pool_restart_event_after_broken_pool(self, tmp_path):
        """A cold pool mid-run (broken-pool fallback) emits
        pool.restarted when the lazy re-warm brings it back."""

        class FakePool:
            def __init__(self):
                self.warm_calls = 0
                self.pool_warm = False

            def start_pool(self, workers):
                self.warm_calls += 1
                self.pool_warm = True

        class FakeStats:
            evictions = 0

        class FakeCache:
            stats = FakeStats()

        class FakeSession(FakePool):
            cache = FakeCache()

            def optimize_many(self, requests, parallel=True,
                              max_workers=None):
                report = OptimizationReport(
                    kernel="dot", target="blas", limits={},
                    solution=None, solution_summary="s",
                    stop_reason="saturated")
                return [report for _ in requests]

            def finish_trace(self, path, events, **kwargs):
                return path

            def close_pool(self):
                self.pool_warm = False

        from repro.obs.events import EventLog

        session = FakeSession()
        queue = JobQueue(session, workers=1, pool_workers=2,
                         events=EventLog(ring_size=64))
        queue.start()
        try:
            assert queue.events.tail(event="pool.warm")
            request = OptimizationRequest(kernel="dot", target="blas")

            def run_one():
                job = queue.submit("t", request, TINY)
                deadline = time.monotonic() + 5
                while job.status == "queued" or job.status == "running":
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                return job

            run_one()
            assert not queue.events.tail(event="pool.restarted")
            session.pool_warm = False  # the pool broke mid-batch
            run_one()
            (event,) = queue.events.tail(event="pool.restarted")
            assert event["workers"] == 2
        finally:
            queue.stop()
