"""Figure 6: gemv run times per saturation step, BLAS vs pure C.

Every expression — the per-step BLAS solutions and the per-step pure-C
solutions — runs on the same compiled substrate (the vectorizing numpy
backend standing in for the paper's C compiler, DESIGN.md §3.2).  The
paper's claim: the two start comparable once the expression has been
simplified, then diverge as BLAS coverage rises — the BLAS curve ends
below the pure-C curve.
"""

import io

import pytest

from repro.backend.executor import time_compiled
from repro.backend.numpy_compiler import CompileError
from repro.experiments import optimize_pair
from repro.kernels import registry

from conftest import write_artifact

BUDGET = 0.15


def test_gemv_runtime_per_step(benchmark):
    kernel = registry.get("gemv")
    inputs = kernel.inputs(0)
    blas_result = optimize_pair("gemv", "blas")
    pure_result = optimize_pair("gemv", "pure_c")

    def measure():
        rows = []
        for label, result in (("blas", blas_result), ("pure_c", pure_result)):
            for record in result.steps:
                if record.best_term is None:
                    continue
                try:
                    timing = time_compiled(record.best_term, inputs, BUDGET)
                except CompileError:
                    continue
                rows.append((label, record.step, timing.mean_seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    out = io.StringIO()
    out.write("target,step,mean_seconds\n")
    for target, step, seconds in rows:
        out.write(f"{target},{step},{seconds:.6f}\n")
    write_artifact("fig6_gemv_runtime.csv", out.getvalue())

    blas_series = [s for t, _, s in rows if t == "blas"]
    pure_series = [s for t, _, s in rows if t == "pure_c"]
    assert blas_series and pure_series

    # Fig. 6's divergence: the final BLAS solution beats the final
    # pure-C solution.
    assert blas_series[-1] < pure_series[-1]
    # The BLAS curve does not regress from its first solution (noise
    # margin 1.5x).
    assert blas_series[-1] <= blas_series[0] * 1.5
