"""Tests for the compiled-substrate timing path (executor + compiler)."""

import numpy as np
import pytest

from repro.backend.executor import (
    compile_solution,
    outputs_match,
    time_compiled,
)
from repro.backend.numpy_compiler import CompileError
from repro.ir import parse
from repro.kernels import registry


class TestCompileSolution:
    def test_compiled_matches_reference(self):
        kernel = registry.get("gemv")
        inputs = kernel.inputs(0)
        compiled = compile_solution(kernel.term)
        assert outputs_match(compiled(inputs), kernel.reference(inputs))

    def test_compiled_library_solution(self):
        kernel = registry.get("gemv")
        inputs = kernel.inputs(0)
        compiled = compile_solution(parse("gemv(alpha, A, B, beta, C)"))
        assert outputs_match(compiled(inputs), kernel.reference(inputs))

    def test_tuple_kernel_compiles(self):
        kernel = registry.get("mvt")
        inputs = kernel.inputs(0)
        compiled = compile_solution(kernel.term)
        assert outputs_match(compiled(inputs), kernel.reference(inputs))

    def test_uncompilable_term_raises_at_call(self):
        compiled = compile_solution(parse("build 2 (λ mystery(•0))"))
        with pytest.raises(CompileError):
            compiled({})


class TestTimeCompiled:
    def test_returns_timing(self):
        kernel = registry.get("vsum")
        inputs = kernel.inputs(0)
        timing = time_compiled(kernel.term, inputs, budget_seconds=0.02)
        assert timing.mean_seconds > 0
        assert timing.runs >= 3

    def test_library_solution_beats_source_on_matmul(self):
        # The fig. 6/7 mechanism in miniature: BLAS-backed matmul beats
        # the compiled reduction loop.
        kernel = registry.get("1mm")
        inputs = kernel.inputs(0)
        ref = time_compiled(kernel.term, inputs, budget_seconds=0.05)
        lib = time_compiled(parse("mm(A, B)"), inputs, budget_seconds=0.05)
        assert lib.mean_seconds < ref.mean_seconds
