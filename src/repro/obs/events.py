"""Structured event log and request flight recorder for the serve layer.

The serve daemon used to narrate itself with printf-style stderr lines
— no timestamps, no tenant, no machine-readable shape.  This module
replaces that with two small, thread-safe instruments:

* :class:`EventLog` — an append-only stream of structured events
  (schema ``repro-events/1``).  Every event is a flat JSON object with
  a wall-clock timestamp, an event kind (``request.accepted``,
  ``job.started``, ``pool.restarted``, …) and kind-specific fields.
  The newest ``ring_size`` events are kept in an in-process ring
  buffer (queryable via :meth:`EventLog.tail`), and each event is
  optionally appended to a JSONL sink file as it is emitted — one
  JSON object per line, flushed per event, so ``tail -f`` and crash
  forensics both work.
* :class:`FlightRecorder` — the last N optimize requests as mutable
  records (trace id, tenant, kernel/target, timings, outcome), served
  by ``GET /v1/debug/requests``.  Records are created at admission
  and completed asynchronously by the job queue; all mutation goes
  through the recorder so readers always see a consistent copy.

Like the tracer and metrics registry, the event log has a no-op
disabled form (:data:`NULL_EVENTS`): ``emit`` returns immediately, so
call sites never need guarding.  The enabled ring-only path is a dict
build plus a deque append — cheap enough that per-request emission
stays inside the obs overhead budget
(``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "EVENTS_SCHEMA",
    "EventLog",
    "NULL_EVENTS",
    "FlightRecorder",
    "format_event",
]

#: Schema tag stamped on every event line (see docs/OBSERVABILITY.md).
EVENTS_SCHEMA = "repro-events/1"


def format_event(event: Dict[str, Any]) -> str:
    """One event as a human-readable single line (the verbose-stderr
    rendering): ISO timestamp, kind, then ``key=value`` pairs."""
    ts = time.strftime("%H:%M:%S", time.localtime(event.get("ts", 0.0)))
    kind = event.get("event", "?")
    fields = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("schema", "ts", "event")
    )
    return f"{ts} {kind} {fields}".rstrip()


class EventLog:
    """Thread-safe structured event stream: ring buffer + JSONL sink.

    ``ring_size`` bounds in-process memory (oldest events fall off);
    the optional ``sink`` path is opened in append mode and receives
    every event as one JSON line, flushed immediately.  ``echo``
    (callable taking the event dict) mirrors events elsewhere — the
    server wires it to its verbose-stderr printer.
    """

    def __init__(self, ring_size: int = 512,
                 sink: Optional[str] = None, *,
                 enabled: bool = True,
                 echo: Optional[Callable[[Dict[str, Any]], None]] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.enabled = enabled
        self.ring_size = int(ring_size)
        self.sink = str(sink) if sink else None
        self.emitted = 0
        self.echo = echo
        self._clock = clock
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=max(1, self.ring_size))
        self._lock = threading.Lock()
        self._handle = None
        if self.sink and enabled:
            from pathlib import Path

            target = Path(self.sink)
            if target.parent != Path("."):
                target.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.sink, "a", encoding="utf-8")

    # -- emission -------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Record one event; ``None``-valued fields are dropped.

        Returns the event dict (or ``None`` when disabled).
        """
        if not self.enabled:
            return None
        event: Dict[str, Any] = {
            "schema": EVENTS_SCHEMA,
            "ts": round(self._clock(), 6),
            "event": kind,
        }
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        with self._lock:
            self.emitted += 1
            self._ring.append(event)
            if self._handle is not None:
                try:
                    self._handle.write(
                        json.dumps(event, sort_keys=True, default=str) + "\n"
                    )
                    self._handle.flush()
                except (OSError, ValueError):
                    self._handle = None  # sink gone: keep the ring alive
        if self.echo is not None:
            self.echo(event)
        return event

    # -- querying -------------------------------------------------------

    def tail(self, n: Optional[int] = None, *,
             event: Optional[str] = None,
             tenant: Optional[str] = None,
             trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """The newest ``n`` ring events matching the filters, in
        chronological order (newest last).  ``n=None`` returns every
        retained match."""
        with self._lock:
            items = list(self._ring)
        if event is not None:
            items = [e for e in items if e.get("event") == event]
        if tenant is not None:
            items = [e for e in items if e.get("tenant") == tenant]
        if trace_id is not None:
            items = [e for e in items if e.get("trace_id") == trace_id]
        if n is not None:
            items = items[-max(0, int(n)):]
        return [dict(e) for e in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        """Close the JSONL sink (ring queries keep working)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


#: The shared disabled event log: ``emit`` is a no-op returning None.
NULL_EVENTS = EventLog(enabled=False)


class FlightRecorder:
    """The last ``capacity`` optimize requests, newest first.

    :meth:`record` creates a record at admission time and returns it;
    the job queue completes it later via :meth:`update` (both take the
    recorder lock, and :meth:`requests` copies under the same lock, so
    readers never observe a half-written record).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(self, **fields: Any) -> Dict[str, Any]:
        """Append a new request record (``None`` fields dropped) and
        return it for later :meth:`update` calls."""
        entry = {k: v for k, v in fields.items() if v is not None}
        with self._lock:
            self._ring.append(entry)
        return entry

    def update(self, entry: Dict[str, Any], **fields: Any) -> None:
        """Merge completion fields into a record under the lock."""
        with self._lock:
            entry.update({k: v for k, v in fields.items() if v is not None})

    def discard(self, entry: Dict[str, Any]) -> None:
        """Drop a record that turned out not to be admitted after all
        (e.g. the queue was full after the record was created)."""
        with self._lock:
            try:
                self._ring.remove(entry)
            except ValueError:
                pass  # already wrapped out of the ring

    def requests(self, n: Optional[int] = None, *,
                 tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Copies of the newest ``n`` records, newest first."""
        with self._lock:
            items = [dict(e) for e in self._ring]
        items.reverse()
        if tenant is not None:
            items = [e for e in items if e.get("tenant") == tenant]
        if n is not None:
            items = items[: max(0, int(n))]
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
